//! The sequential model of Appendix D.1: one uniformly random ant acts
//! per round, seeing feedback of the round before.
//!
//! The contrast between this engine and [`crate::SyncEngine`] running
//! the same [`antalloc_core::Trivial`] controller *is* Appendix D: the
//! sequential colony settles near the demands, the synchronous one
//! flip-flops with amplitude `Θ(n)`.

use antalloc_env::{ColonyState, DemandVector, InitialConfig, Timeline, TriggerState};
use antalloc_noise::NoiseModel;
use antalloc_rng::{reserved, uniform_index, AntRng, StreamSeeder};

use crate::config::SimConfig;
use crate::engine::{apply_event, colony_view, event_seeder, RoundRecord};
use crate::observer::Observer;
use crate::population::Population;

/// The sequential-model engine.
///
/// Owns the same banked `Population` as [`crate::SyncEngine`] — one
/// homogeneous bank per controller kind plus the ant → (bank, slot)
/// index — so `ControllerSpec::Mix` colonies run under the sequential
/// model too; only one ant (bank slot) steps per round. Timeline
/// events fire at the start of their round exactly as in the
/// synchronous engine, drawing from the same reserved per-round
/// streams, so scripted scenarios are model-portable.
pub struct SequentialEngine {
    config: SimConfig,
    /// The config's timeline with generators expanded (see
    /// [`Timeline::compile`]); all stepping reads this one.
    compiled: Timeline,
    colony: ColonyState,
    population: Population,
    noise: NoiseModel,
    seeder: StreamSeeder,
    event_seeder: StreamSeeder,
    scheduler_rng: AntRng,
    init_rng: AntRng,
    round: u64,
    cursor: usize,
    trigger_states: Vec<TriggerState>,
    next_stream: u64,
    deficits: Vec<i64>,
    post_deficits: Vec<i64>,
}

impl SequentialEngine {
    pub(crate) fn new(config: SimConfig, demands: DemandVector) -> Self {
        let n = config.n;
        let k = demands.num_tasks();
        let seeder = StreamSeeder::new(config.seed);
        let population = Population::build(&config.controller, config.seed, k, n);
        let compiled = config.timeline.compile(config.seed, n, demands.as_slice());
        let trigger_states = compiled.initial_trigger_states();
        let mut engine = Self {
            colony: ColonyState::new(n, demands),
            population,
            noise: config.noise.clone(),
            seeder,
            event_seeder: event_seeder(config.seed),
            scheduler_rng: seeder.stream(reserved::ENGINE),
            init_rng: seeder.stream(reserved::INIT),
            round: 0,
            cursor: 0,
            trigger_states,
            next_stream: n as u64,
            deficits: vec![0; k],
            post_deficits: vec![0; k],
            compiled,
            config,
        };
        let initial = engine.config.initial.clone();
        engine.set_initial(&initial);
        engine
    }

    /// Applies an initial configuration and syncs controllers.
    pub fn set_initial(&mut self, initial: &InitialConfig) {
        initial.apply(&mut self.colony, &mut self.init_rng);
        self.population.reset_to_colony(&self.colony);
    }

    /// The current round (1-based after the first step).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The colony's ground truth.
    pub fn colony(&self) -> &ColonyState {
        &self.colony
    }

    /// The runtime state of every timeline trigger, in timeline order
    /// (empty for trigger-free scenarios).
    pub fn trigger_states(&self) -> &[TriggerState] {
        &self.trigger_states
    }

    /// One sequential round: timeline events fire first (one-shots,
    /// cycles, then triggers armed at the end of the previous round),
    /// then a uniformly random ant observes and acts.
    pub fn step(&mut self, observer: &mut impl Observer) {
        self.round += 1;
        let mut fired = Vec::new();
        self.compiled
            .fire_into(self.round, &mut self.cursor, &mut fired);
        self.compiled
            .fire_triggers_into(self.round, &mut self.trigger_states, &mut fired);
        if !fired.is_empty() {
            let mut rng = self.event_seeder.stream(self.round);
            for event in &fired {
                apply_event(
                    event,
                    &mut self.colony,
                    &mut self.population,
                    // The sequential engine rejects arena configs at
                    // build time (`SimConfig::try_build_sequential`).
                    None,
                    &mut self.noise,
                    &mut rng,
                    &self.seeder,
                    &mut self.next_stream,
                );
            }
        }
        self.colony.deficits_into(&mut self.deficits);
        let prepared =
            self.noise
                .prepare(self.round, &self.deficits, self.colony.demands().as_slice());
        let i = uniform_index(&mut self.scheduler_rng, self.population.len());
        let next = self.population.step_one(i, &prepared);
        let switches = u64::from(next != self.colony.assignment(i));
        self.colony.apply(i, next);
        self.colony.deficits_into(&mut self.post_deficits);
        let record = RoundRecord {
            round: self.round,
            deficits: &self.post_deficits,
            demands: self.colony.demands().as_slice(),
            loads: self.colony.loads(),
            idle: self.colony.idle_count(),
            switches,
        };
        observer.on_round(&record);
        if self.compiled.has_triggers() {
            let view = colony_view(self.round, &self.post_deficits, &self.colony);
            self.compiled
                .observe_triggers(&mut self.trigger_states, &view);
        }
    }

    /// Runs `rounds` sequential rounds.
    pub fn run(&mut self, rounds: u64, observer: &mut impl Observer) {
        for _ in 0..rounds {
            self.step(observer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerSpec;
    use crate::observer::{NullObserver, RunSummary};

    fn config() -> SimConfig {
        SimConfig::builder(400, vec![100])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Trivial)
            .seed(11)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn one_ant_moves_per_round() {
        let mut e = config().build_sequential();
        let mut switched = 0u64;
        let mut obs = crate::observer::FnObserver::new(|r: &RoundRecord<'_>| {
            assert!(r.switches <= 1);
        });
        e.run(200, &mut obs);
        assert_eq!(e.round(), 200);
        assert!(e.colony().recount_consistent());
        let _ = &mut switched;
    }

    #[test]
    fn trivial_sequential_converges_to_demand_band() {
        let mut e = config().build_sequential();
        let mut obs = NullObserver;
        // Enough rounds for ~n joins.
        e.run(5_000, &mut obs);
        let mut tail = RunSummary::new();
        e.run(5_000, &mut tail);
        // D.1: the sequential trivial algorithm hovers near the demand;
        // a generous band (half the demand) suffices to separate it from
        // the synchronous Θ(n) oscillation.
        assert!(
            tail.average_regret() < 50.0,
            "avg regret {}",
            tail.average_regret()
        );
    }

    #[test]
    fn deterministic_across_reruns() {
        let mut a = config().build_sequential();
        let mut b = config().build_sequential();
        let mut obs = NullObserver;
        a.run(500, &mut obs);
        b.run(500, &mut obs);
        assert_eq!(a.colony().loads(), b.colony().loads());
    }
}
