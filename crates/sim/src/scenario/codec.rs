//! Declarative encoding of every configuration type onto the [`Value`]
//! tree — the schema both the TOML and JSON scenario formats share.
//!
//! Schema sketch (TOML syntax):
//!
//! ```toml
//! name = "quickstart"        # optional
//! n = 4000
//! demands = [400, 700, 300]
//! seed = 12648430
//! out_of_spec = false        # optional: skip parameter-window checks
//!
//! [controller]
//! kind = "ant"               # ant | ant-desync | precise-sigmoid |
//!                            # precise-adversarial | trivial |
//!                            # exact-greedy | hysteresis |
//! gamma = 0.0625             # proportional | mix
//!
//! [noise]
//! kind = "sigmoid"           # sigmoid | correlated-sigmoid |
//! lambda = 2.0               # adversarial | exact
//!
//! [arena]                    # optional: spatial sensing (tasks pinned
//! sites = [0, 0, 1]          # to sites; demand sensed locally)
//! travel_rounds = 4
//! wander_probability = 0.02
//!
//! [[timeline]]               # optional: scripted mid-run events
//! at = 4000
//! kind = "set-demands"
//! demands = [1200, 800]
//!
//! [[timeline]]
//! at = 6000
//! kind = "kill"              # set-demands | kill | spawn | scramble |
//! count = 2000               # stampede-to | set-noise | cycle
//!
//! [[timeline]]
//! kind = "cycle"             # a repeating generator
//! start = 8000
//! period = 500
//! events = [ { kind = "set-demands", demands = [800, 1200] },
//!            { kind = "set-demands", demands = [1200, 800] } ]
//!
//! [initial]                  # optional (defaults to all-idle)
//! kind = "saturated-plus"
//! extra = 10
//! ```
//!
//! A timeline with conditional triggers or random shock generators uses
//! the *table* form instead: scripted entries move under
//! `[[timeline.events]]` (same shape as above) and the new sections sit
//! beside them:
//!
//! ```toml
//! [[timeline.trigger]]       # fire on colony state, not a round number
//! kind = "scramble"
//! when = { kind = "regret-below", threshold = 40, for_rounds = 16 }
//! cooldown = 500             # optional (default 0)
//! max_firings = 2            # optional (default 1; 0 = unlimited)
//!
//! [timeline.generate]        # a seeded random shock schedule
//! kind = "kill"              # kill | spawn | scramble | demand-step
//! until = 20000
//! mean_gap = 2000.0
//! min_frac = 0.1
//! max_frac = 0.4
//! ```
//!
//! Conditions compose with `kind = "and"` / `"or"` over sub-conditions
//! `a` and `b`; `[[timeline.generate]]` (array form) declares several
//! generators. `docs/SCENARIOS.md` documents every table and key.
//!
//! Every enum uses a `kind` discriminant with kebab-case variant names;
//! optional parameters fall back to the same defaults the Rust
//! constructors use, so minimal files stay minimal. The legacy
//! `[schedule]` section is still accepted on input (it compiles to the
//! equivalent timeline); output always uses `[[timeline]]`.

use antalloc_core::{
    AntParams, ExactGreedyParams, PreciseAdversarialParams, PreciseSigmoidParams,
    ProportionalParams,
};
use antalloc_env::{
    ArenaConfig, Condition, Cycle, DemandSchedule, Event, GenShock, InitialConfig, TimedEvent,
    Timeline, TimelineGen, Trigger,
};
use antalloc_noise::{GreyZonePolicy, NoiseModel};

use crate::config::{ControllerSpec, SimConfig};
use crate::scenario::value::{u64_array, Value};
use crate::scenario::ConfigError;

fn bad(what: &str, msg: impl core::fmt::Display) -> ConfigError {
    ConfigError::Parse(format!("{what}: {msg}"))
}

/// Rejects unknown keys: a typo'd key or section must fail loudly, not
/// silently run a different scenario with the default value.
fn check_keys(v: &Value, what: &str, allowed: &[&str]) -> Result<(), ConfigError> {
    if let Value::Table(pairs) = v {
        for (key, _) in pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(bad(
                    what,
                    format!(
                        "unknown key `{key}` (expected one of: {})",
                        allowed.join(", ")
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn int(x: u64) -> Value {
    Value::Int(i128::from(x))
}

// ---- SimConfig ----------------------------------------------------------

/// Encodes a config (plus optional scenario metadata) as a value tree.
pub fn config_to_value(config: &SimConfig, name: Option<&str>, out_of_spec: bool) -> Value {
    let mut root = Value::table();
    if let Some(name) = name {
        root.insert("name", Value::Str(name.to_string()));
    }
    root.insert("n", int(config.n as u64));
    root.insert("demands", u64_array(&config.demands));
    root.insert("seed", int(config.seed));
    if out_of_spec {
        root.insert("out_of_spec", Value::Bool(true));
    }
    root.insert("controller", controller_to_value(&config.controller));
    root.insert("noise", noise_to_value(&config.noise));
    if let Some(arena) = &config.arena {
        root.insert("arena", arena_to_value(arena));
    }
    if !config.timeline.is_empty() {
        root.insert("timeline", timeline_to_value(&config.timeline));
    }
    if config.initial != InitialConfig::AllIdle {
        root.insert("initial", initial_to_value(&config.initial));
    }
    root
}

/// Decodes a config (plus metadata) from a value tree. Purely
/// syntactic: run the scenario-level validation separately.
pub fn config_from_value(root: &Value) -> Result<(SimConfig, Option<String>, bool), ConfigError> {
    check_keys(
        root,
        "scenario",
        &[
            "name",
            "n",
            "demands",
            "seed",
            "out_of_spec",
            "controller",
            "noise",
            "arena",
            "timeline",
            "schedule",
            "initial",
        ],
    )?;
    let name = match root.get("name") {
        Some(v) => Some(v.as_str("name")?.to_string()),
        None => None,
    };
    let out_of_spec = match root.get("out_of_spec") {
        Some(v) => v.as_bool("out_of_spec")?,
        None => false,
    };
    let timeline = match (root.get("timeline"), root.get("schedule")) {
        (Some(_), Some(_)) => {
            return Err(bad(
                "scenario",
                "give either `timeline` or the legacy `schedule`, not both",
            ));
        }
        (Some(v), None) => timeline_from_value(v)?,
        // Legacy sugar: a demand schedule compiles to its timeline.
        (None, Some(v)) => schedule_from_value(v)?.into(),
        (None, None) => Timeline::new(),
    };
    let config = SimConfig {
        n: root.want("n")?.as_usize("n")?,
        demands: root.want("demands")?.as_u64_array("demands")?,
        seed: match root.get("seed") {
            Some(v) => v.as_u64("seed")?,
            None => 0,
        },
        controller: controller_from_value(root.want("controller")?)?,
        noise: noise_from_value(root.want("noise")?)?,
        arena: match root.get("arena") {
            Some(v) => Some(arena_from_value(v)?),
            None => None,
        },
        timeline,
        initial: match root.get("initial") {
            Some(v) => initial_from_value(v)?,
            None => InitialConfig::AllIdle,
        },
    };
    Ok((config, name, out_of_spec))
}

// ---- ControllerSpec -----------------------------------------------------

/// Encodes a controller spec.
pub fn controller_to_value(spec: &ControllerSpec) -> Value {
    let mut t = Value::table();
    match spec {
        ControllerSpec::Ant(p) | ControllerSpec::AntDesync(p) => {
            t.insert(
                "kind",
                Value::Str(
                    if matches!(spec, ControllerSpec::Ant(_)) {
                        "ant"
                    } else {
                        "ant-desync"
                    }
                    .into(),
                ),
            );
            t.insert("gamma", float(p.gamma));
            t.insert("cs", float(p.cs));
            t.insert("cd", float(p.cd));
        }
        ControllerSpec::PreciseSigmoid(p) => {
            t.insert("kind", Value::Str("precise-sigmoid".into()));
            t.insert("gamma", float(p.gamma));
            t.insert("eps", float(p.eps));
            t.insert("c_chi", float(p.c_chi));
            t.insert("cs", float(p.cs));
            t.insert("cd", float(p.cd));
            if p.paper_literal_leave_prob {
                t.insert("paper_literal_leave_prob", Value::Bool(true));
            }
        }
        ControllerSpec::PreciseAdversarial(p) => {
            t.insert("kind", Value::Str("precise-adversarial".into()));
            t.insert("gamma", float(p.gamma));
            t.insert("eps", float(p.eps));
        }
        ControllerSpec::Trivial => {
            t.insert("kind", Value::Str("trivial".into()));
        }
        ControllerSpec::ExactGreedy(p) => {
            t.insert("kind", Value::Str("exact-greedy".into()));
            t.insert("p_join", float(p.p_join));
            t.insert("p_leave", float(p.p_leave));
        }
        ControllerSpec::Hysteresis { depth, lazy } => {
            t.insert("kind", Value::Str("hysteresis".into()));
            t.insert("depth", int(u64::from(*depth)));
            if let Some(p) = lazy {
                t.insert("lazy", float(*p));
            }
        }
        ControllerSpec::Proportional(p) => {
            t.insert("kind", Value::Str("proportional".into()));
            t.insert("gain", float(p.gain));
            if p.deadband != 0 {
                t.insert("deadband", int(u64::from(p.deadband)));
            }
        }
        ControllerSpec::Mix(parts) => {
            t.insert("kind", Value::Str("mix".into()));
            t.insert(
                "parts",
                Value::Array(
                    parts
                        .iter()
                        .map(|(weight, sub)| {
                            let mut part = Value::table();
                            part.insert("weight", float(*weight));
                            part.insert("controller", controller_to_value(sub));
                            part
                        })
                        .collect(),
                ),
            );
        }
    }
    t
}

/// Decodes a controller spec.
pub fn controller_from_value(v: &Value) -> Result<ControllerSpec, ConfigError> {
    let what = "controller";
    let kind = v.want("kind")?.as_str("controller.kind")?;
    let allowed: &[&str] = match kind {
        "ant" | "ant-desync" => &["kind", "gamma", "cs", "cd"],
        "precise-sigmoid" => &[
            "kind",
            "gamma",
            "eps",
            "c_chi",
            "cs",
            "cd",
            "paper_literal_leave_prob",
        ],
        "precise-adversarial" => &["kind", "gamma", "eps"],
        "trivial" => &["kind"],
        "exact-greedy" => &["kind", "p_join", "p_leave"],
        "hysteresis" => &["kind", "depth", "lazy"],
        "proportional" => &["kind", "gain", "deadband"],
        "mix" => &["kind", "parts"],
        _ => &["kind"], // unknown kind errors below
    };
    check_keys(v, what, allowed)?;
    let opt_f64 = |key: &str, default: f64| -> Result<f64, ConfigError> {
        match v.get(key) {
            Some(x) => x.as_f64(key),
            None => Ok(default),
        }
    };
    match kind {
        "ant" | "ant-desync" => {
            let mut p = AntParams::new(v.want("gamma")?.as_f64("controller.gamma")?);
            p.cs = opt_f64("cs", p.cs)?;
            p.cd = opt_f64("cd", p.cd)?;
            Ok(if kind == "ant" {
                ControllerSpec::Ant(p)
            } else {
                ControllerSpec::AntDesync(p)
            })
        }
        "precise-sigmoid" => {
            let mut p = PreciseSigmoidParams::new(
                v.want("gamma")?.as_f64("controller.gamma")?,
                v.want("eps")?.as_f64("controller.eps")?,
            );
            p.c_chi = opt_f64("c_chi", p.c_chi)?;
            p.cs = opt_f64("cs", p.cs)?;
            p.cd = opt_f64("cd", p.cd)?;
            if let Some(flag) = v.get("paper_literal_leave_prob") {
                p.paper_literal_leave_prob = flag.as_bool("paper_literal_leave_prob")?;
            }
            Ok(ControllerSpec::PreciseSigmoid(p))
        }
        "precise-adversarial" => Ok(ControllerSpec::PreciseAdversarial(
            PreciseAdversarialParams::new(
                v.want("gamma")?.as_f64("controller.gamma")?,
                v.want("eps")?.as_f64("controller.eps")?,
            ),
        )),
        "trivial" => Ok(ControllerSpec::Trivial),
        "exact-greedy" => {
            let mut p = ExactGreedyParams::default();
            p.p_join = opt_f64("p_join", p.p_join)?;
            p.p_leave = opt_f64("p_leave", p.p_leave)?;
            Ok(ControllerSpec::ExactGreedy(p))
        }
        "proportional" => {
            let mut p = ProportionalParams::default();
            p.gain = opt_f64("gain", p.gain)?;
            if let Some(x) = v.get("deadband") {
                let raw = x.as_u64("controller.deadband")?;
                p.deadband = u16::try_from(raw)
                    .map_err(|_| bad(what, format!("deadband {raw} exceeds u16")))?;
            }
            Ok(ControllerSpec::Proportional(p))
        }
        "hysteresis" => {
            let depth64 = v.want("depth")?.as_u64("controller.depth")?;
            let depth = u16::try_from(depth64)
                .map_err(|_| bad(what, format!("depth {depth64} exceeds u16")))?;
            let lazy = match v.get("lazy") {
                Some(x) => Some(x.as_f64("controller.lazy")?),
                None => None,
            };
            Ok(ControllerSpec::Hysteresis { depth, lazy })
        }
        "mix" => {
            let parts = v
                .want("parts")?
                .as_array("controller.parts")?
                .iter()
                .map(|part| {
                    check_keys(part, "controller.parts entry", &["weight", "controller"])?;
                    let weight = part.want("weight")?.as_f64("mix.weight")?;
                    let sub = controller_from_value(part.want("controller")?)?;
                    Ok((weight, sub))
                })
                .collect::<Result<Vec<_>, ConfigError>>()?;
            Ok(ControllerSpec::Mix(parts))
        }
        other => Err(bad(what, format!("unknown kind `{other}`"))),
    }
}

// ---- NoiseModel ---------------------------------------------------------

/// Encodes a noise model.
pub fn noise_to_value(noise: &NoiseModel) -> Value {
    let mut t = Value::table();
    match noise {
        NoiseModel::Sigmoid { lambda } => {
            t.insert("kind", Value::Str("sigmoid".into()));
            t.insert("lambda", float(*lambda));
        }
        NoiseModel::CorrelatedSigmoid { lambda, rho, seed } => {
            t.insert("kind", Value::Str("correlated-sigmoid".into()));
            t.insert("lambda", float(*lambda));
            t.insert("rho", float(*rho));
            t.insert("seed", int(*seed));
        }
        NoiseModel::Adversarial { gamma_ad, policy } => {
            t.insert("kind", Value::Str("adversarial".into()));
            t.insert("gamma_ad", float(*gamma_ad));
            t.insert("policy", policy_to_value(policy));
        }
        NoiseModel::Exact => {
            t.insert("kind", Value::Str("exact".into()));
        }
    }
    t
}

/// Decodes a noise model.
pub fn noise_from_value(v: &Value) -> Result<NoiseModel, ConfigError> {
    let kind = v.want("kind")?.as_str("noise.kind")?;
    let allowed: &[&str] = match kind {
        "sigmoid" => &["kind", "lambda"],
        "correlated-sigmoid" => &["kind", "lambda", "rho", "seed"],
        "adversarial" => &["kind", "gamma_ad", "policy"],
        _ => &["kind"],
    };
    check_keys(v, "noise", allowed)?;
    match kind {
        "sigmoid" => Ok(NoiseModel::Sigmoid {
            lambda: v.want("lambda")?.as_f64("noise.lambda")?,
        }),
        "correlated-sigmoid" => Ok(NoiseModel::CorrelatedSigmoid {
            lambda: v.want("lambda")?.as_f64("noise.lambda")?,
            rho: v.want("rho")?.as_f64("noise.rho")?,
            seed: match v.get("seed") {
                Some(s) => s.as_u64("noise.seed")?,
                None => 0,
            },
        }),
        "adversarial" => Ok(NoiseModel::Adversarial {
            gamma_ad: v.want("gamma_ad")?.as_f64("noise.gamma_ad")?,
            policy: policy_from_value(v.want("policy")?)?,
        }),
        "exact" => Ok(NoiseModel::Exact),
        other => Err(bad("noise", format!("unknown kind `{other}`"))),
    }
}

fn policy_to_value(policy: &GreyZonePolicy) -> Value {
    let mut t = Value::table();
    match policy {
        GreyZonePolicy::AlwaysLack => t.insert("kind", Value::Str("always-lack".into())),
        GreyZonePolicy::AlwaysOverload => t.insert("kind", Value::Str("always-overload".into())),
        GreyZonePolicy::Truthful => t.insert("kind", Value::Str("truthful".into())),
        GreyZonePolicy::Inverted => t.insert("kind", Value::Str("inverted".into())),
        GreyZonePolicy::AlternateByRound => {
            t.insert("kind", Value::Str("alternate-by-round".into()))
        }
        GreyZonePolicy::RandomLack(p) => {
            t.insert("kind", Value::Str("random-lack".into()));
            t.insert("p", float(*p));
        }
        GreyZonePolicy::LoadThreshold(thresholds) => {
            t.insert("kind", Value::Str("load-threshold".into()));
            t.insert("thresholds", u64_array(thresholds));
        }
    }
    t
}

fn policy_from_value(v: &Value) -> Result<GreyZonePolicy, ConfigError> {
    let kind = v.want("kind")?.as_str("policy.kind")?;
    let allowed: &[&str] = match kind {
        "random-lack" => &["kind", "p"],
        "load-threshold" => &["kind", "thresholds"],
        _ => &["kind"],
    };
    check_keys(v, "policy", allowed)?;
    match kind {
        "always-lack" => Ok(GreyZonePolicy::AlwaysLack),
        "always-overload" => Ok(GreyZonePolicy::AlwaysOverload),
        "truthful" => Ok(GreyZonePolicy::Truthful),
        "inverted" => Ok(GreyZonePolicy::Inverted),
        "alternate-by-round" => Ok(GreyZonePolicy::AlternateByRound),
        "random-lack" => Ok(GreyZonePolicy::RandomLack(v.want("p")?.as_f64("policy.p")?)),
        "load-threshold" => Ok(GreyZonePolicy::LoadThreshold(
            v.want("thresholds")?.as_u64_array("policy.thresholds")?,
        )),
        other => Err(bad("policy", format!("unknown kind `{other}`"))),
    }
}

// ---- ArenaConfig --------------------------------------------------------

/// Encodes a spatial arena as the `[arena]` table.
pub fn arena_to_value(arena: &ArenaConfig) -> Value {
    let mut t = Value::table();
    t.insert(
        "sites",
        Value::Array(
            arena
                .site_of_task
                .iter()
                .map(|&s| int(u64::from(s)))
                .collect(),
        ),
    );
    if arena.travel_rounds != 0 {
        t.insert("travel_rounds", int(u64::from(arena.travel_rounds)));
    }
    if arena.wander_probability != 0.0 {
        t.insert("wander_probability", float(arena.wander_probability));
    }
    t
}

/// Decodes a spatial arena. Purely syntactic — the geometry checks
/// (dense sites, `sites` length vs the task count) run with the rest of
/// the scenario validation.
pub fn arena_from_value(v: &Value) -> Result<ArenaConfig, ConfigError> {
    let what = "arena";
    check_keys(v, what, &["sites", "travel_rounds", "wander_probability"])?;
    let site_of_task = v
        .want("sites")?
        .as_u64_array("arena.sites")?
        .into_iter()
        .map(|s| u32::try_from(s).map_err(|_| bad(what, format!("site id {s} exceeds u32"))))
        .collect::<Result<Vec<_>, ConfigError>>()?;
    let travel_rounds = match v.get("travel_rounds") {
        Some(x) => {
            let raw = x.as_u64("arena.travel_rounds")?;
            u32::try_from(raw).map_err(|_| bad(what, format!("travel_rounds {raw} exceeds u32")))?
        }
        None => 0,
    };
    let wander_probability = match v.get("wander_probability") {
        Some(x) => x.as_f64("arena.wander_probability")?,
        None => 0.0,
    };
    Ok(ArenaConfig {
        site_of_task,
        travel_rounds,
        wander_probability,
    })
}

// ---- DemandSchedule (legacy input sugar) --------------------------------

/// Decodes a legacy `[schedule]` section; callers compile the result to
/// a [`Timeline`] immediately (output always uses `timeline`).
pub fn schedule_from_value(v: &Value) -> Result<DemandSchedule, ConfigError> {
    let kind = v.want("kind")?.as_str("schedule.kind")?;
    let allowed: &[&str] = match kind {
        "step" => &["kind", "at", "demands"],
        "steps" => &["kind", "steps"],
        "alternating" => &["kind", "a", "b", "half_period"],
        _ => &["kind"],
    };
    check_keys(v, "schedule", allowed)?;
    match kind {
        "static" => Ok(DemandSchedule::Static),
        "step" => Ok(DemandSchedule::Step {
            at: v.want("at")?.as_u64("schedule.at")?,
            demands: v.want("demands")?.as_u64_array("schedule.demands")?,
        }),
        "steps" => {
            let steps = v
                .want("steps")?
                .as_array("schedule.steps")?
                .iter()
                .map(|s| {
                    check_keys(s, "schedule.steps entry", &["at", "demands"])?;
                    Ok((
                        s.want("at")?.as_u64("step.at")?,
                        s.want("demands")?.as_u64_array("step.demands")?,
                    ))
                })
                .collect::<Result<Vec<_>, ConfigError>>()?;
            Ok(DemandSchedule::Steps(steps))
        }
        "alternating" => Ok(DemandSchedule::Alternating {
            a: v.want("a")?.as_u64_array("schedule.a")?,
            b: v.want("b")?.as_u64_array("schedule.b")?,
            half_period: v.want("half_period")?.as_u64("schedule.half_period")?,
        }),
        other => Err(bad("schedule", format!("unknown kind `{other}`"))),
    }
}

// ---- InitialConfig ------------------------------------------------------

/// Encodes an initial configuration.
pub fn initial_to_value(initial: &InitialConfig) -> Value {
    let mut t = Value::table();
    match initial {
        InitialConfig::AllIdle => t.insert("kind", Value::Str("all-idle".into())),
        InitialConfig::AllOnTask(j) => {
            t.insert("kind", Value::Str("all-on-task".into()));
            t.insert("task", int(*j as u64));
        }
        InitialConfig::UniformRandom => t.insert("kind", Value::Str("uniform-random".into())),
        InitialConfig::Saturated => t.insert("kind", Value::Str("saturated".into())),
        InitialConfig::SaturatedPlus { extra } => {
            t.insert("kind", Value::Str("saturated-plus".into()));
            t.insert("extra", int(*extra));
        }
        InitialConfig::Inverted => t.insert("kind", Value::Str("inverted".into())),
    }
    t
}

/// Decodes an initial configuration.
pub fn initial_from_value(v: &Value) -> Result<InitialConfig, ConfigError> {
    let kind = v.want("kind")?.as_str("initial.kind")?;
    let allowed: &[&str] = match kind {
        "all-on-task" => &["kind", "task"],
        "saturated-plus" => &["kind", "extra"],
        _ => &["kind"],
    };
    check_keys(v, "initial", allowed)?;
    match kind {
        "all-idle" => Ok(InitialConfig::AllIdle),
        "all-on-task" => Ok(InitialConfig::AllOnTask(
            v.want("task")?.as_usize("initial.task")?,
        )),
        "uniform-random" => Ok(InitialConfig::UniformRandom),
        "saturated" => Ok(InitialConfig::Saturated),
        "saturated-plus" => Ok(InitialConfig::SaturatedPlus {
            extra: v.want("extra")?.as_u64("initial.extra")?,
        }),
        "inverted" => Ok(InitialConfig::Inverted),
        other => Err(bad("initial", format!("unknown kind `{other}`"))),
    }
}

// ---- Timeline -----------------------------------------------------------

/// Writes an event's `kind` and payload into an existing table (used
/// both for `[[timeline]]` entries and the events inside a cycle).
fn event_into_table(event: &Event, t: &mut Value) {
    match event {
        Event::SetDemands(demands) => {
            t.insert("kind", Value::Str("set-demands".into()));
            t.insert("demands", u64_array(demands));
        }
        Event::Kill { count } => {
            t.insert("kind", Value::Str("kill".into()));
            t.insert("count", int(*count as u64));
        }
        Event::Spawn { count } => {
            t.insert("kind", Value::Str("spawn".into()));
            t.insert("count", int(*count as u64));
        }
        Event::Scramble => t.insert("kind", Value::Str("scramble".into())),
        Event::StampedeTo(j) => {
            t.insert("kind", Value::Str("stampede-to".into()));
            t.insert("task", int(*j as u64));
        }
        Event::SetNoise(model) => {
            t.insert("kind", Value::Str("set-noise".into()));
            t.insert("noise", noise_to_value(model));
        }
        Event::SetTaskDemand { task, demand } => {
            t.insert("kind", Value::Str("set-task-demand".into()));
            t.insert("task", int(*task as u64));
            t.insert("demand", int(*demand));
        }
    }
}

/// Encodes one scripted event (no scheduling fields).
pub fn event_to_value(event: &Event) -> Value {
    let mut t = Value::table();
    event_into_table(event, &mut t);
    t
}

/// The payload keys each event kind allows, shared by one-shot entries
/// (which add `at`) and cycle events. `None` for unknown kinds, so the
/// caller reports the bad `kind` instead of flagging its payload keys.
fn event_keys(kind: &str, with_at: bool) -> Option<Vec<&'static str>> {
    let mut keys: Vec<&'static str> = if with_at {
        vec!["at", "kind"]
    } else {
        vec!["kind"]
    };
    let payload: &[&str] = match kind {
        "set-demands" => &["demands"],
        "set-task-demand" => &["task", "demand"],
        "kill" | "spawn" => &["count"],
        "stampede-to" => &["task"],
        "set-noise" => &["noise"],
        "scramble" => &[],
        _ => return None,
    };
    keys.extend(payload);
    Some(keys)
}

fn event_from_table(v: &Value, what: &str) -> Result<Event, ConfigError> {
    let kind = v.want("kind")?.as_str("event.kind")?;
    match kind {
        "set-demands" => Ok(Event::SetDemands(
            v.want("demands")?.as_u64_array("event.demands")?,
        )),
        "set-task-demand" => Ok(Event::SetTaskDemand {
            task: v.want("task")?.as_usize("event.task")?,
            demand: v.want("demand")?.as_u64("event.demand")?,
        }),
        "kill" => Ok(Event::Kill {
            count: v.want("count")?.as_usize("event.count")?,
        }),
        "spawn" => Ok(Event::Spawn {
            count: v.want("count")?.as_usize("event.count")?,
        }),
        "scramble" => Ok(Event::Scramble),
        "stampede-to" => Ok(Event::StampedeTo(v.want("task")?.as_usize("event.task")?)),
        "set-noise" => Ok(Event::SetNoise(noise_from_value(v.want("noise")?)?)),
        other => Err(bad(what, format!("unknown event kind `{other}`"))),
    }
}

/// Decodes one scripted event.
pub fn event_from_value(v: &Value) -> Result<Event, ConfigError> {
    if let Some(keys) = v
        .get("kind")
        .and_then(|k| k.as_str("kind").ok())
        .and_then(|kind| event_keys(kind, false))
    {
        check_keys(v, "event", &keys)?;
    }
    event_from_table(v, "event")
}

/// Encodes the scripted (one-shot + cycle) entries as an array of
/// entry tables: one-shot events carry an `at` round, cycles use
/// `kind = "cycle"`.
fn scripted_entries_to_value(timeline: &Timeline) -> Value {
    let mut entries = Vec::with_capacity(timeline.events.len() + timeline.cycles.len());
    for timed in &timeline.events {
        let mut t = Value::table();
        t.insert("at", int(timed.at));
        event_into_table(&timed.event, &mut t);
        entries.push(t);
    }
    for cycle in &timeline.cycles {
        let mut t = Value::table();
        t.insert("kind", Value::Str("cycle".into()));
        t.insert("start", int(cycle.start));
        t.insert("period", int(cycle.period));
        t.insert(
            "events",
            Value::Array(cycle.events.iter().map(event_to_value).collect()),
        );
        entries.push(t);
    }
    Value::Array(entries)
}

/// Encodes a timeline. Purely scripted timelines stay in the classic
/// `[[timeline]]` array form; timelines with triggers or generators use
/// the table form (`[[timeline.events]]` / `[[timeline.trigger]]` /
/// `[[timeline.generate]]`) — both forms decode.
pub fn timeline_to_value(timeline: &Timeline) -> Value {
    if timeline.triggers.is_empty() && timeline.generators.is_empty() {
        return scripted_entries_to_value(timeline);
    }
    let mut t = Value::table();
    if !(timeline.events.is_empty() && timeline.cycles.is_empty()) {
        t.insert("events", scripted_entries_to_value(timeline));
    }
    if !timeline.triggers.is_empty() {
        t.insert(
            "trigger",
            Value::Array(timeline.triggers.iter().map(trigger_to_value).collect()),
        );
    }
    if !timeline.generators.is_empty() {
        t.insert(
            "generate",
            Value::Array(timeline.generators.iter().map(gen_to_value).collect()),
        );
    }
    t
}

/// Decodes the scripted entries of a timeline from an array of entry
/// tables, appending into `timeline`.
fn scripted_entries_from_value(v: &Value, timeline: &mut Timeline) -> Result<(), ConfigError> {
    let what = "timeline";
    for entry in v.as_array(what)? {
        let kind = entry.want("kind")?.as_str("timeline.kind")?;
        if kind == "cycle" {
            check_keys(
                entry,
                "timeline cycle",
                &["kind", "start", "period", "events"],
            )?;
            let events = entry
                .want("events")?
                .as_array("cycle.events")?
                .iter()
                .map(event_from_value)
                .collect::<Result<Vec<_>, ConfigError>>()?;
            timeline.cycles.push(Cycle {
                start: entry.want("start")?.as_u64("cycle.start")?,
                period: entry.want("period")?.as_u64("cycle.period")?,
                events,
            });
        } else {
            if let Some(keys) = event_keys(kind, true) {
                check_keys(entry, "timeline entry", &keys)?;
            }
            timeline.events.push(TimedEvent {
                at: entry.want("at")?.as_u64("timeline.at")?,
                event: event_from_table(entry, what)?,
            });
        }
    }
    Ok(())
}

/// Decodes a timeline from either the classic array form or the table
/// form with `events` / `trigger` / `generate` sections.
pub fn timeline_from_value(v: &Value) -> Result<Timeline, ConfigError> {
    let mut timeline = Timeline::new();
    match v {
        Value::Table(_) => {
            check_keys(v, "timeline", &["events", "trigger", "generate"])?;
            if let Some(entries) = v.get("events") {
                scripted_entries_from_value(entries, &mut timeline)?;
            }
            // `[timeline.trigger]` / `[timeline.generate]` declare one
            // entry, `[[…]]` blocks an ensemble of them.
            match v.get("trigger") {
                Some(single @ Value::Table(_)) => {
                    timeline.triggers.push(trigger_from_value(single)?);
                }
                Some(many) => {
                    for entry in many.as_array("timeline.trigger")? {
                        timeline.triggers.push(trigger_from_value(entry)?);
                    }
                }
                None => {}
            }
            match v.get("generate") {
                Some(single @ Value::Table(_)) => {
                    timeline.generators.push(gen_from_value(single)?);
                }
                Some(many) => {
                    for entry in many.as_array("timeline.generate")? {
                        timeline.generators.push(gen_from_value(entry)?);
                    }
                }
                None => {}
            }
        }
        _ => scripted_entries_from_value(v, &mut timeline)?,
    }
    Ok(timeline)
}

// ---- Trigger ------------------------------------------------------------

/// Encodes a trigger condition.
pub fn condition_to_value(condition: &Condition) -> Value {
    let mut t = Value::table();
    match condition {
        Condition::RegretAbove {
            threshold,
            for_rounds,
        }
        | Condition::RegretBelow {
            threshold,
            for_rounds,
        } => {
            t.insert(
                "kind",
                Value::Str(
                    if matches!(condition, Condition::RegretAbove { .. }) {
                        "regret-above"
                    } else {
                        "regret-below"
                    }
                    .into(),
                ),
            );
            t.insert("threshold", int(*threshold));
            if *for_rounds != 1 {
                t.insert("for_rounds", int(u64::from(*for_rounds)));
            }
        }
        Condition::PopulationBelow { threshold } => {
            t.insert("kind", Value::Str("population-below".into()));
            t.insert("threshold", int(*threshold as u64));
        }
        Condition::RoundReached { round } => {
            t.insert("kind", Value::Str("round-reached".into()));
            t.insert("round", int(*round));
        }
        Condition::DeficitAbove {
            task,
            threshold,
            for_rounds,
        } => {
            t.insert("kind", Value::Str("deficit-above".into()));
            t.insert("task", int(*task as u64));
            t.insert("threshold", Value::Int(i128::from(*threshold)));
            if *for_rounds != 1 {
                t.insert("for_rounds", int(u64::from(*for_rounds)));
            }
        }
        Condition::DeficitRateAbove {
            task,
            min_rise,
            for_rounds,
        } => {
            t.insert("kind", Value::Str("deficit-rate-above".into()));
            t.insert("task", int(*task as u64));
            t.insert("min_rise", Value::Int(i128::from(*min_rise)));
            if *for_rounds != 1 {
                t.insert("for_rounds", int(u64::from(*for_rounds)));
            }
        }
        Condition::And(a, b) | Condition::Or(a, b) => {
            t.insert(
                "kind",
                Value::Str(
                    if matches!(condition, Condition::And(..)) {
                        "and"
                    } else {
                        "or"
                    }
                    .into(),
                ),
            );
            t.insert("a", condition_to_value(a));
            t.insert("b", condition_to_value(b));
        }
    }
    t
}

/// Decodes a trigger condition.
pub fn condition_from_value(v: &Value) -> Result<Condition, ConfigError> {
    let what = "condition";
    let kind = v.want("kind")?.as_str("condition.kind")?;
    let allowed: &[&str] = match kind {
        "regret-above" | "regret-below" => &["kind", "threshold", "for_rounds"],
        "deficit-above" => &["kind", "task", "threshold", "for_rounds"],
        "deficit-rate-above" => &["kind", "task", "min_rise", "for_rounds"],
        "population-below" => &["kind", "threshold"],
        "round-reached" => &["kind", "round"],
        "and" | "or" => &["kind", "a", "b"],
        _ => &["kind"],
    };
    check_keys(v, what, allowed)?;
    let for_rounds = || -> Result<u32, ConfigError> {
        match v.get("for_rounds") {
            Some(x) => {
                let raw = x.as_u64("condition.for_rounds")?;
                u32::try_from(raw).map_err(|_| bad(what, format!("for_rounds {raw} exceeds u32")))
            }
            None => Ok(1),
        }
    };
    match kind {
        "regret-above" | "regret-below" => {
            let threshold = v.want("threshold")?.as_u64("condition.threshold")?;
            let for_rounds = for_rounds()?;
            Ok(if kind == "regret-above" {
                Condition::RegretAbove {
                    threshold,
                    for_rounds,
                }
            } else {
                Condition::RegretBelow {
                    threshold,
                    for_rounds,
                }
            })
        }
        "deficit-above" => Ok(Condition::DeficitAbove {
            task: v.want("task")?.as_usize("condition.task")?,
            threshold: v.want("threshold")?.as_i64("condition.threshold")?,
            for_rounds: for_rounds()?,
        }),
        "deficit-rate-above" => Ok(Condition::DeficitRateAbove {
            task: v.want("task")?.as_usize("condition.task")?,
            min_rise: v.want("min_rise")?.as_i64("condition.min_rise")?,
            for_rounds: for_rounds()?,
        }),
        "population-below" => Ok(Condition::PopulationBelow {
            threshold: v.want("threshold")?.as_usize("condition.threshold")?,
        }),
        "round-reached" => Ok(Condition::RoundReached {
            round: v.want("round")?.as_u64("condition.round")?,
        }),
        "and" | "or" => {
            let a = Box::new(condition_from_value(v.want("a")?)?);
            let b = Box::new(condition_from_value(v.want("b")?)?);
            Ok(if kind == "and" {
                Condition::And(a, b)
            } else {
                Condition::Or(a, b)
            })
        }
        other => Err(bad(what, format!("unknown kind `{other}`"))),
    }
}

/// Encodes a trigger: the event's own keys plus `when` and the
/// optional `cooldown` / `max_firings` budget.
pub fn trigger_to_value(trigger: &Trigger) -> Value {
    let mut t = Value::table();
    event_into_table(&trigger.event, &mut t);
    t.insert("when", condition_to_value(&trigger.when));
    if trigger.cooldown != 0 {
        t.insert("cooldown", int(trigger.cooldown));
    }
    if trigger.max_firings != 1 {
        t.insert("max_firings", int(u64::from(trigger.max_firings)));
    }
    t
}

/// Decodes a trigger.
pub fn trigger_from_value(v: &Value) -> Result<Trigger, ConfigError> {
    let what = "trigger";
    if let Some(kind) = v.get("kind").and_then(|k| k.as_str("kind").ok()) {
        if let Some(mut keys) = event_keys(kind, false) {
            keys.extend(["when", "cooldown", "max_firings"]);
            check_keys(v, what, &keys)?;
        }
    }
    let event = event_from_table(v, what)?;
    let when = condition_from_value(v.want("when")?)?;
    let cooldown = match v.get("cooldown") {
        Some(x) => x.as_u64("trigger.cooldown")?,
        None => 0,
    };
    let max_firings = match v.get("max_firings") {
        Some(x) => {
            let raw = x.as_u64("trigger.max_firings")?;
            u32::try_from(raw).map_err(|_| bad(what, format!("max_firings {raw} exceeds u32")))?
        }
        None => 1,
    };
    Ok(Trigger {
        when,
        event,
        cooldown,
        max_firings,
    })
}

// ---- TimelineGen --------------------------------------------------------

/// Encodes a shock-schedule generator.
pub fn gen_to_value(generator: &TimelineGen) -> Value {
    let mut t = Value::table();
    let kind = match &generator.shock {
        GenShock::Kill { .. } => "kill",
        GenShock::Spawn { .. } => "spawn",
        GenShock::Scramble => "scramble",
        GenShock::DemandStep { .. } => "demand-step",
    };
    t.insert("kind", Value::Str(kind.into()));
    if generator.start != 1 {
        t.insert("start", int(generator.start));
    }
    t.insert("until", int(generator.until));
    t.insert("mean_gap", float(generator.mean_gap));
    match &generator.shock {
        GenShock::Kill { min_frac, max_frac } | GenShock::Spawn { min_frac, max_frac } => {
            t.insert("min_frac", float(*min_frac));
            t.insert("max_frac", float(*max_frac));
        }
        GenShock::Scramble => {}
        GenShock::DemandStep {
            min_factor,
            max_factor,
        } => {
            t.insert("min_factor", float(*min_factor));
            t.insert("max_factor", float(*max_factor));
        }
    }
    t
}

/// Decodes a shock-schedule generator.
pub fn gen_from_value(v: &Value) -> Result<TimelineGen, ConfigError> {
    let what = "generate";
    let kind = v.want("kind")?.as_str("generate.kind")?;
    let allowed: &[&str] = match kind {
        "kill" | "spawn" => &["kind", "start", "until", "mean_gap", "min_frac", "max_frac"],
        "scramble" => &["kind", "start", "until", "mean_gap"],
        "demand-step" => &[
            "kind",
            "start",
            "until",
            "mean_gap",
            "min_factor",
            "max_factor",
        ],
        _ => &["kind"],
    };
    check_keys(v, what, allowed)?;
    let shock = match kind {
        "kill" | "spawn" => {
            let min_frac = v.want("min_frac")?.as_f64("generate.min_frac")?;
            let max_frac = v.want("max_frac")?.as_f64("generate.max_frac")?;
            if kind == "kill" {
                GenShock::Kill { min_frac, max_frac }
            } else {
                GenShock::Spawn { min_frac, max_frac }
            }
        }
        "scramble" => GenShock::Scramble,
        "demand-step" => GenShock::DemandStep {
            min_factor: v.want("min_factor")?.as_f64("generate.min_factor")?,
            max_factor: v.want("max_factor")?.as_f64("generate.max_factor")?,
        },
        other => return Err(bad(what, format!("unknown kind `{other}`"))),
    };
    Ok(TimelineGen {
        start: match v.get("start") {
            Some(x) => x.as_u64("generate.start")?,
            None => 1,
        },
        until: v.want("until")?.as_u64("generate.until")?,
        mean_gap: v.want("mean_gap")?.as_f64("generate.mean_gap")?,
        shock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_controllers() -> Vec<ControllerSpec> {
        vec![
            ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
            ControllerSpec::AntDesync(AntParams {
                gamma: 0.05,
                cs: 2.4,
                cd: 18.0,
            }),
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.4)),
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams {
                paper_literal_leave_prob: true,
                ..PreciseSigmoidParams::new(0.05, 0.4)
            }),
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.05, 0.3)),
            ControllerSpec::Trivial,
            ControllerSpec::ExactGreedy(ExactGreedyParams {
                p_join: 0.4,
                p_leave: 0.1,
            }),
            ControllerSpec::Hysteresis {
                depth: 4,
                lazy: None,
            },
            ControllerSpec::Hysteresis {
                depth: 2,
                lazy: Some(0.5),
            },
            ControllerSpec::Proportional(ProportionalParams::default()),
            ControllerSpec::Proportional(ProportionalParams {
                gain: 0.25,
                deadband: 3,
            }),
            ControllerSpec::Mix(vec![
                (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::ExactGreedy(ExactGreedyParams {
                        p_join: 0.4,
                        p_leave: 0.1,
                    }),
                ),
                (
                    0.5,
                    ControllerSpec::Hysteresis {
                        depth: 3,
                        lazy: None,
                    },
                ),
            ]),
        ]
    }

    fn all_noises() -> Vec<NoiseModel> {
        vec![
            NoiseModel::Sigmoid { lambda: 2.0 },
            NoiseModel::CorrelatedSigmoid {
                lambda: 1.5,
                rho: 0.3,
                seed: 99,
            },
            NoiseModel::Exact,
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::AlwaysLack,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::AlwaysOverload,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::Truthful,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::Inverted,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::AlternateByRound,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::RandomLack(0.25),
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::LoadThreshold(vec![7, 9]),
            },
        ]
    }

    #[test]
    fn every_controller_roundtrips() {
        for spec in all_controllers() {
            let back = controller_from_value(&controller_to_value(&spec)).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn every_noise_roundtrips() {
        for noise in all_noises() {
            let back = noise_from_value(&noise_to_value(&noise)).unwrap();
            assert_eq!(back, noise);
        }
    }

    #[test]
    fn every_initial_roundtrips() {
        for initial in [
            InitialConfig::AllIdle,
            InitialConfig::AllOnTask(2),
            InitialConfig::UniformRandom,
            InitialConfig::Saturated,
            InitialConfig::SaturatedPlus { extra: 11 },
            InitialConfig::Inverted,
        ] {
            let back = initial_from_value(&initial_to_value(&initial)).unwrap();
            assert_eq!(back, initial);
        }
    }

    #[test]
    fn every_timeline_roundtrips() {
        let timelines = [
            Timeline::new().at(5, Event::Kill { count: 5 }),
            Timeline::new()
                .at(3, Event::SetDemands(vec![4, 4]))
                .at(3, Event::Spawn { count: 9 })
                .at(5, Event::SetTaskDemand { task: 1, demand: 7 })
                .at(8, Event::Scramble)
                .at(9, Event::StampedeTo(1))
                .at(12, Event::SetNoise(NoiseModel::Sigmoid { lambda: 4.0 })),
            Timeline::new()
                .at(
                    2,
                    Event::SetNoise(NoiseModel::Adversarial {
                        gamma_ad: 0.05,
                        policy: GreyZonePolicy::AlwaysLack,
                    }),
                )
                .every(
                    10,
                    5,
                    vec![Event::SetDemands(vec![1, 2]), Event::SetDemands(vec![2, 1])],
                ),
        ];
        for timeline in timelines {
            let back = timeline_from_value(&timeline_to_value(&timeline)).unwrap();
            assert_eq!(back, timeline);
        }
    }

    #[test]
    fn triggers_and_generators_roundtrip() {
        let timelines = [
            // Triggers only.
            Timeline::new().trigger(Trigger {
                when: Condition::RegretBelow {
                    threshold: 40,
                    for_rounds: 16,
                },
                event: Event::Scramble,
                cooldown: 500,
                max_firings: 2,
            }),
            // Composite conditions, every event payload, defaults.
            Timeline::new()
                .trigger(Trigger::once(
                    Condition::And(
                        Box::new(Condition::RegretAbove {
                            threshold: 100,
                            for_rounds: 1,
                        }),
                        Box::new(Condition::Or(
                            Box::new(Condition::PopulationBelow { threshold: 300 }),
                            Box::new(Condition::RoundReached { round: 800 }),
                        )),
                    ),
                    Event::Spawn { count: 50 },
                ))
                .trigger(Trigger {
                    when: Condition::PopulationBelow { threshold: 100 },
                    event: Event::SetNoise(NoiseModel::Exact),
                    cooldown: 0,
                    max_firings: 0,
                }),
            // Deficit conditions (absolute and rate), negative bounds,
            // firing the arena experiments' site-local demand step.
            Timeline::new()
                .trigger(Trigger::once(
                    Condition::DeficitAbove {
                        task: 1,
                        threshold: -4,
                        for_rounds: 8,
                    },
                    Event::SetTaskDemand {
                        task: 1,
                        demand: 20,
                    },
                ))
                .trigger(Trigger {
                    when: Condition::DeficitRateAbove {
                        task: 0,
                        min_rise: 2,
                        for_rounds: 1,
                    },
                    event: Event::Spawn { count: 10 },
                    cooldown: 100,
                    max_firings: 5,
                }),
            // Generators of every shock kind, mixed with scripted
            // events and cycles.
            Timeline::new()
                .at(10, Event::Kill { count: 5 })
                .every(100, 50, vec![Event::Scramble])
                .generate(TimelineGen {
                    start: 1,
                    until: 9_000,
                    mean_gap: 750.0,
                    shock: GenShock::Kill {
                        min_frac: 0.1,
                        max_frac: 0.4,
                    },
                })
                .generate(TimelineGen {
                    start: 500,
                    until: 8_000,
                    mean_gap: 1_000.0,
                    shock: GenShock::Spawn {
                        min_frac: 0.05,
                        max_frac: 0.2,
                    },
                })
                .generate(TimelineGen {
                    start: 1,
                    until: 9_000,
                    mean_gap: 2_000.0,
                    shock: GenShock::Scramble,
                })
                .generate(TimelineGen {
                    start: 1,
                    until: 9_000,
                    mean_gap: 1_500.0,
                    shock: GenShock::DemandStep {
                        min_factor: 0.5,
                        max_factor: 2.0,
                    },
                }),
        ];
        for timeline in timelines {
            let back = timeline_from_value(&timeline_to_value(&timeline)).unwrap();
            assert_eq!(back, timeline);
        }
    }

    #[test]
    fn single_trigger_and_generate_tables_decode_as_one_entry() {
        // `[timeline.generate]` / `[timeline.trigger]` (tables, not
        // arrays) are accepted alongside the `[[…]]` forms.
        let mut generate = Value::table();
        generate.insert("kind", Value::Str("scramble".into()));
        generate.insert("until", Value::Int(1000));
        generate.insert("mean_gap", Value::Float(100.0));
        let mut timeline = Value::table();
        timeline.insert("generate", generate);
        let decoded = timeline_from_value(&timeline).unwrap();
        assert_eq!(decoded.generators.len(), 1);
        assert_eq!(decoded.generators[0].shock, GenShock::Scramble);
        assert_eq!(decoded.generators[0].start, 1, "start defaults to 1");

        let trigger = trigger_to_value(&Trigger::once(
            Condition::RegretBelow {
                threshold: 5,
                for_rounds: 2,
            },
            Event::Scramble,
        ));
        let mut timeline = Value::table();
        timeline.insert("trigger", trigger);
        let decoded = timeline_from_value(&timeline).unwrap();
        assert_eq!(decoded.triggers.len(), 1);
        assert_eq!(decoded.triggers[0].max_firings, 1);
    }

    #[test]
    fn trigger_typos_and_unknown_condition_kinds_are_parse_errors() {
        let trigger = Trigger::once(
            Condition::RegretBelow {
                threshold: 5,
                for_rounds: 2,
            },
            Event::Scramble,
        );
        let mut v = trigger_to_value(&trigger);
        v.insert("cooldwn", Value::Int(5)); // typo'd key
        assert!(trigger_from_value(&v).is_err());
        let mut c = Value::table();
        c.insert("kind", Value::Str("regret-sideways".into()));
        assert!(condition_from_value(&c).is_err());
        // A trigger without a condition is rejected.
        let mut v = trigger_to_value(&trigger);
        let Value::Table(pairs) = &mut v else {
            unreachable!()
        };
        pairs.retain(|(k, _)| k != "when");
        assert!(trigger_from_value(&v).is_err());
        // Unknown keys inside the timeline table form fail loudly.
        let mut t = Value::table();
        t.insert("triger", Value::Array(vec![]));
        assert!(timeline_from_value(&t).is_err());
    }

    #[test]
    fn legacy_schedules_decode_to_their_timeline() {
        // `[schedule]` sections still load; the decoded config carries
        // the compiled timeline.
        let mut root = Value::table();
        root.insert("n", Value::Int(100));
        root.insert("demands", u64_array(&[20, 30]));
        root.insert("controller", controller_to_value(&ControllerSpec::Trivial));
        root.insert("noise", noise_to_value(&NoiseModel::Exact));
        let mut schedule = Value::table();
        schedule.insert("kind", Value::Str("step".into()));
        schedule.insert("at", Value::Int(10));
        schedule.insert("demands", u64_array(&[30, 20]));
        root.insert("schedule", schedule.clone());
        let (config, _, _) = config_from_value(&root).unwrap();
        let expected: Timeline = DemandSchedule::Step {
            at: 10,
            demands: vec![30, 20],
        }
        .into();
        assert_eq!(config.timeline, expected);
        // ...but giving both forms at once is an error.
        root.insert("timeline", timeline_to_value(&expected));
        let err = config_from_value(&root).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
    }

    #[test]
    fn unknown_kinds_are_parse_errors() {
        let mut t = Value::table();
        t.insert("kind", Value::Str("quantum".into()));
        assert!(controller_from_value(&t).is_err());
        assert!(noise_from_value(&t).is_err());
        assert!(schedule_from_value(&t).is_err());
        assert!(initial_from_value(&t).is_err());
        assert!(event_from_value(&t).is_err());
        assert!(timeline_from_value(&Value::Array(vec![t])).is_err());
    }

    #[test]
    fn arena_roundtrips_and_rejects_typos() {
        for arena in [
            ArenaConfig::single_site(3),
            ArenaConfig {
                site_of_task: vec![0, 0, 1, 2],
                travel_rounds: 4,
                wander_probability: 0.02,
            },
        ] {
            let back = arena_from_value(&arena_to_value(&arena)).unwrap();
            assert_eq!(back, arena);
        }
        let mut v = arena_to_value(&ArenaConfig::single_site(2));
        v.insert("travel_round", Value::Int(3)); // typo'd key
        assert!(arena_from_value(&v).is_err());
    }

    #[test]
    fn missing_required_keys_are_parse_errors() {
        let mut t = Value::table();
        t.insert("kind", Value::Str("sigmoid".into()));
        let err = noise_from_value(&t).unwrap_err();
        assert!(err.to_string().contains("lambda"), "{err}");
    }
}
