//! Declarative encoding of every configuration type onto the [`Value`]
//! tree — the schema both the TOML and JSON scenario formats share.
//!
//! Schema sketch (TOML syntax):
//!
//! ```toml
//! name = "quickstart"        # optional
//! n = 4000
//! demands = [400, 700, 300]
//! seed = 12648430
//! out_of_spec = false        # optional: skip parameter-window checks
//!
//! [controller]
//! kind = "ant"               # ant | ant-desync | precise-sigmoid |
//!                            # precise-adversarial | trivial |
//!                            # exact-greedy | hysteresis
//! gamma = 0.0625
//!
//! [noise]
//! kind = "sigmoid"           # sigmoid | correlated-sigmoid |
//! lambda = 2.0               # adversarial | exact
//!
//! [[timeline]]               # optional: scripted mid-run events
//! at = 4000
//! kind = "set-demands"
//! demands = [1200, 800]
//!
//! [[timeline]]
//! at = 6000
//! kind = "kill"              # set-demands | kill | spawn | scramble |
//! count = 2000               # stampede-to | set-noise | cycle
//!
//! [[timeline]]
//! kind = "cycle"             # a repeating generator
//! start = 8000
//! period = 500
//! events = [ { kind = "set-demands", demands = [800, 1200] },
//!            { kind = "set-demands", demands = [1200, 800] } ]
//!
//! [initial]                  # optional (defaults to all-idle)
//! kind = "saturated-plus"
//! extra = 10
//! ```
//!
//! Every enum uses a `kind` discriminant with kebab-case variant names;
//! optional parameters fall back to the same defaults the Rust
//! constructors use, so minimal files stay minimal. The legacy
//! `[schedule]` section is still accepted on input (it compiles to the
//! equivalent timeline); output always uses `[[timeline]]`.

use antalloc_core::{AntParams, ExactGreedyParams, PreciseAdversarialParams, PreciseSigmoidParams};
use antalloc_env::{Cycle, DemandSchedule, Event, InitialConfig, TimedEvent, Timeline};
use antalloc_noise::{GreyZonePolicy, NoiseModel};

use crate::config::{ControllerSpec, SimConfig};
use crate::scenario::value::{u64_array, Value};
use crate::scenario::ConfigError;

fn bad(what: &str, msg: impl core::fmt::Display) -> ConfigError {
    ConfigError::Parse(format!("{what}: {msg}"))
}

/// Rejects unknown keys: a typo'd key or section must fail loudly, not
/// silently run a different scenario with the default value.
fn check_keys(v: &Value, what: &str, allowed: &[&str]) -> Result<(), ConfigError> {
    if let Value::Table(pairs) = v {
        for (key, _) in pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(bad(
                    what,
                    format!(
                        "unknown key `{key}` (expected one of: {})",
                        allowed.join(", ")
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn int(x: u64) -> Value {
    Value::Int(i128::from(x))
}

// ---- SimConfig ----------------------------------------------------------

/// Encodes a config (plus optional scenario metadata) as a value tree.
pub fn config_to_value(config: &SimConfig, name: Option<&str>, out_of_spec: bool) -> Value {
    let mut root = Value::table();
    if let Some(name) = name {
        root.insert("name", Value::Str(name.to_string()));
    }
    root.insert("n", int(config.n as u64));
    root.insert("demands", u64_array(&config.demands));
    root.insert("seed", int(config.seed));
    if out_of_spec {
        root.insert("out_of_spec", Value::Bool(true));
    }
    root.insert("controller", controller_to_value(&config.controller));
    root.insert("noise", noise_to_value(&config.noise));
    if !config.timeline.is_empty() {
        root.insert("timeline", timeline_to_value(&config.timeline));
    }
    if config.initial != InitialConfig::AllIdle {
        root.insert("initial", initial_to_value(&config.initial));
    }
    root
}

/// Decodes a config (plus metadata) from a value tree. Purely
/// syntactic: run the scenario-level validation separately.
pub fn config_from_value(root: &Value) -> Result<(SimConfig, Option<String>, bool), ConfigError> {
    check_keys(
        root,
        "scenario",
        &[
            "name",
            "n",
            "demands",
            "seed",
            "out_of_spec",
            "controller",
            "noise",
            "timeline",
            "schedule",
            "initial",
        ],
    )?;
    let name = match root.get("name") {
        Some(v) => Some(v.as_str("name")?.to_string()),
        None => None,
    };
    let out_of_spec = match root.get("out_of_spec") {
        Some(v) => v.as_bool("out_of_spec")?,
        None => false,
    };
    let timeline = match (root.get("timeline"), root.get("schedule")) {
        (Some(_), Some(_)) => {
            return Err(bad(
                "scenario",
                "give either `timeline` or the legacy `schedule`, not both",
            ));
        }
        (Some(v), None) => timeline_from_value(v)?,
        // Legacy sugar: a demand schedule compiles to its timeline.
        (None, Some(v)) => schedule_from_value(v)?.into(),
        (None, None) => Timeline::new(),
    };
    let config = SimConfig {
        n: root.want("n")?.as_usize("n")?,
        demands: root.want("demands")?.as_u64_array("demands")?,
        seed: match root.get("seed") {
            Some(v) => v.as_u64("seed")?,
            None => 0,
        },
        controller: controller_from_value(root.want("controller")?)?,
        noise: noise_from_value(root.want("noise")?)?,
        timeline,
        initial: match root.get("initial") {
            Some(v) => initial_from_value(v)?,
            None => InitialConfig::AllIdle,
        },
    };
    Ok((config, name, out_of_spec))
}

// ---- ControllerSpec -----------------------------------------------------

/// Encodes a controller spec.
pub fn controller_to_value(spec: &ControllerSpec) -> Value {
    let mut t = Value::table();
    match spec {
        ControllerSpec::Ant(p) | ControllerSpec::AntDesync(p) => {
            t.insert(
                "kind",
                Value::Str(
                    if matches!(spec, ControllerSpec::Ant(_)) {
                        "ant"
                    } else {
                        "ant-desync"
                    }
                    .into(),
                ),
            );
            t.insert("gamma", float(p.gamma));
            t.insert("cs", float(p.cs));
            t.insert("cd", float(p.cd));
        }
        ControllerSpec::PreciseSigmoid(p) => {
            t.insert("kind", Value::Str("precise-sigmoid".into()));
            t.insert("gamma", float(p.gamma));
            t.insert("eps", float(p.eps));
            t.insert("c_chi", float(p.c_chi));
            t.insert("cs", float(p.cs));
            t.insert("cd", float(p.cd));
            if p.paper_literal_leave_prob {
                t.insert("paper_literal_leave_prob", Value::Bool(true));
            }
        }
        ControllerSpec::PreciseAdversarial(p) => {
            t.insert("kind", Value::Str("precise-adversarial".into()));
            t.insert("gamma", float(p.gamma));
            t.insert("eps", float(p.eps));
        }
        ControllerSpec::Trivial => {
            t.insert("kind", Value::Str("trivial".into()));
        }
        ControllerSpec::ExactGreedy(p) => {
            t.insert("kind", Value::Str("exact-greedy".into()));
            t.insert("p_join", float(p.p_join));
            t.insert("p_leave", float(p.p_leave));
        }
        ControllerSpec::Hysteresis { depth, lazy } => {
            t.insert("kind", Value::Str("hysteresis".into()));
            t.insert("depth", int(u64::from(*depth)));
            if let Some(p) = lazy {
                t.insert("lazy", float(*p));
            }
        }
        ControllerSpec::Mix(parts) => {
            t.insert("kind", Value::Str("mix".into()));
            t.insert(
                "parts",
                Value::Array(
                    parts
                        .iter()
                        .map(|(weight, sub)| {
                            let mut part = Value::table();
                            part.insert("weight", float(*weight));
                            part.insert("controller", controller_to_value(sub));
                            part
                        })
                        .collect(),
                ),
            );
        }
    }
    t
}

/// Decodes a controller spec.
pub fn controller_from_value(v: &Value) -> Result<ControllerSpec, ConfigError> {
    let what = "controller";
    let kind = v.want("kind")?.as_str("controller.kind")?;
    let allowed: &[&str] = match kind {
        "ant" | "ant-desync" => &["kind", "gamma", "cs", "cd"],
        "precise-sigmoid" => &[
            "kind",
            "gamma",
            "eps",
            "c_chi",
            "cs",
            "cd",
            "paper_literal_leave_prob",
        ],
        "precise-adversarial" => &["kind", "gamma", "eps"],
        "trivial" => &["kind"],
        "exact-greedy" => &["kind", "p_join", "p_leave"],
        "hysteresis" => &["kind", "depth", "lazy"],
        "mix" => &["kind", "parts"],
        _ => &["kind"], // unknown kind errors below
    };
    check_keys(v, what, allowed)?;
    let opt_f64 = |key: &str, default: f64| -> Result<f64, ConfigError> {
        match v.get(key) {
            Some(x) => x.as_f64(key),
            None => Ok(default),
        }
    };
    match kind {
        "ant" | "ant-desync" => {
            let mut p = AntParams::new(v.want("gamma")?.as_f64("controller.gamma")?);
            p.cs = opt_f64("cs", p.cs)?;
            p.cd = opt_f64("cd", p.cd)?;
            Ok(if kind == "ant" {
                ControllerSpec::Ant(p)
            } else {
                ControllerSpec::AntDesync(p)
            })
        }
        "precise-sigmoid" => {
            let mut p = PreciseSigmoidParams::new(
                v.want("gamma")?.as_f64("controller.gamma")?,
                v.want("eps")?.as_f64("controller.eps")?,
            );
            p.c_chi = opt_f64("c_chi", p.c_chi)?;
            p.cs = opt_f64("cs", p.cs)?;
            p.cd = opt_f64("cd", p.cd)?;
            if let Some(flag) = v.get("paper_literal_leave_prob") {
                p.paper_literal_leave_prob = flag.as_bool("paper_literal_leave_prob")?;
            }
            Ok(ControllerSpec::PreciseSigmoid(p))
        }
        "precise-adversarial" => Ok(ControllerSpec::PreciseAdversarial(
            PreciseAdversarialParams::new(
                v.want("gamma")?.as_f64("controller.gamma")?,
                v.want("eps")?.as_f64("controller.eps")?,
            ),
        )),
        "trivial" => Ok(ControllerSpec::Trivial),
        "exact-greedy" => {
            let mut p = ExactGreedyParams::default();
            p.p_join = opt_f64("p_join", p.p_join)?;
            p.p_leave = opt_f64("p_leave", p.p_leave)?;
            Ok(ControllerSpec::ExactGreedy(p))
        }
        "hysteresis" => {
            let depth64 = v.want("depth")?.as_u64("controller.depth")?;
            let depth = u16::try_from(depth64)
                .map_err(|_| bad(what, format!("depth {depth64} exceeds u16")))?;
            let lazy = match v.get("lazy") {
                Some(x) => Some(x.as_f64("controller.lazy")?),
                None => None,
            };
            Ok(ControllerSpec::Hysteresis { depth, lazy })
        }
        "mix" => {
            let parts = v
                .want("parts")?
                .as_array("controller.parts")?
                .iter()
                .map(|part| {
                    check_keys(part, "controller.parts entry", &["weight", "controller"])?;
                    let weight = part.want("weight")?.as_f64("mix.weight")?;
                    let sub = controller_from_value(part.want("controller")?)?;
                    Ok((weight, sub))
                })
                .collect::<Result<Vec<_>, ConfigError>>()?;
            Ok(ControllerSpec::Mix(parts))
        }
        other => Err(bad(what, format!("unknown kind `{other}`"))),
    }
}

// ---- NoiseModel ---------------------------------------------------------

/// Encodes a noise model.
pub fn noise_to_value(noise: &NoiseModel) -> Value {
    let mut t = Value::table();
    match noise {
        NoiseModel::Sigmoid { lambda } => {
            t.insert("kind", Value::Str("sigmoid".into()));
            t.insert("lambda", float(*lambda));
        }
        NoiseModel::CorrelatedSigmoid { lambda, rho, seed } => {
            t.insert("kind", Value::Str("correlated-sigmoid".into()));
            t.insert("lambda", float(*lambda));
            t.insert("rho", float(*rho));
            t.insert("seed", int(*seed));
        }
        NoiseModel::Adversarial { gamma_ad, policy } => {
            t.insert("kind", Value::Str("adversarial".into()));
            t.insert("gamma_ad", float(*gamma_ad));
            t.insert("policy", policy_to_value(policy));
        }
        NoiseModel::Exact => {
            t.insert("kind", Value::Str("exact".into()));
        }
    }
    t
}

/// Decodes a noise model.
pub fn noise_from_value(v: &Value) -> Result<NoiseModel, ConfigError> {
    let kind = v.want("kind")?.as_str("noise.kind")?;
    let allowed: &[&str] = match kind {
        "sigmoid" => &["kind", "lambda"],
        "correlated-sigmoid" => &["kind", "lambda", "rho", "seed"],
        "adversarial" => &["kind", "gamma_ad", "policy"],
        _ => &["kind"],
    };
    check_keys(v, "noise", allowed)?;
    match kind {
        "sigmoid" => Ok(NoiseModel::Sigmoid {
            lambda: v.want("lambda")?.as_f64("noise.lambda")?,
        }),
        "correlated-sigmoid" => Ok(NoiseModel::CorrelatedSigmoid {
            lambda: v.want("lambda")?.as_f64("noise.lambda")?,
            rho: v.want("rho")?.as_f64("noise.rho")?,
            seed: match v.get("seed") {
                Some(s) => s.as_u64("noise.seed")?,
                None => 0,
            },
        }),
        "adversarial" => Ok(NoiseModel::Adversarial {
            gamma_ad: v.want("gamma_ad")?.as_f64("noise.gamma_ad")?,
            policy: policy_from_value(v.want("policy")?)?,
        }),
        "exact" => Ok(NoiseModel::Exact),
        other => Err(bad("noise", format!("unknown kind `{other}`"))),
    }
}

fn policy_to_value(policy: &GreyZonePolicy) -> Value {
    let mut t = Value::table();
    match policy {
        GreyZonePolicy::AlwaysLack => t.insert("kind", Value::Str("always-lack".into())),
        GreyZonePolicy::AlwaysOverload => t.insert("kind", Value::Str("always-overload".into())),
        GreyZonePolicy::Truthful => t.insert("kind", Value::Str("truthful".into())),
        GreyZonePolicy::Inverted => t.insert("kind", Value::Str("inverted".into())),
        GreyZonePolicy::AlternateByRound => {
            t.insert("kind", Value::Str("alternate-by-round".into()))
        }
        GreyZonePolicy::RandomLack(p) => {
            t.insert("kind", Value::Str("random-lack".into()));
            t.insert("p", float(*p));
        }
        GreyZonePolicy::LoadThreshold(thresholds) => {
            t.insert("kind", Value::Str("load-threshold".into()));
            t.insert("thresholds", u64_array(thresholds));
        }
    }
    t
}

fn policy_from_value(v: &Value) -> Result<GreyZonePolicy, ConfigError> {
    let kind = v.want("kind")?.as_str("policy.kind")?;
    let allowed: &[&str] = match kind {
        "random-lack" => &["kind", "p"],
        "load-threshold" => &["kind", "thresholds"],
        _ => &["kind"],
    };
    check_keys(v, "policy", allowed)?;
    match kind {
        "always-lack" => Ok(GreyZonePolicy::AlwaysLack),
        "always-overload" => Ok(GreyZonePolicy::AlwaysOverload),
        "truthful" => Ok(GreyZonePolicy::Truthful),
        "inverted" => Ok(GreyZonePolicy::Inverted),
        "alternate-by-round" => Ok(GreyZonePolicy::AlternateByRound),
        "random-lack" => Ok(GreyZonePolicy::RandomLack(v.want("p")?.as_f64("policy.p")?)),
        "load-threshold" => Ok(GreyZonePolicy::LoadThreshold(
            v.want("thresholds")?.as_u64_array("policy.thresholds")?,
        )),
        other => Err(bad("policy", format!("unknown kind `{other}`"))),
    }
}

// ---- DemandSchedule (legacy input sugar) --------------------------------

/// Decodes a legacy `[schedule]` section; callers compile the result to
/// a [`Timeline`] immediately (output always uses `timeline`).
pub fn schedule_from_value(v: &Value) -> Result<DemandSchedule, ConfigError> {
    let kind = v.want("kind")?.as_str("schedule.kind")?;
    let allowed: &[&str] = match kind {
        "step" => &["kind", "at", "demands"],
        "steps" => &["kind", "steps"],
        "alternating" => &["kind", "a", "b", "half_period"],
        _ => &["kind"],
    };
    check_keys(v, "schedule", allowed)?;
    match kind {
        "static" => Ok(DemandSchedule::Static),
        "step" => Ok(DemandSchedule::Step {
            at: v.want("at")?.as_u64("schedule.at")?,
            demands: v.want("demands")?.as_u64_array("schedule.demands")?,
        }),
        "steps" => {
            let steps = v
                .want("steps")?
                .as_array("schedule.steps")?
                .iter()
                .map(|s| {
                    check_keys(s, "schedule.steps entry", &["at", "demands"])?;
                    Ok((
                        s.want("at")?.as_u64("step.at")?,
                        s.want("demands")?.as_u64_array("step.demands")?,
                    ))
                })
                .collect::<Result<Vec<_>, ConfigError>>()?;
            Ok(DemandSchedule::Steps(steps))
        }
        "alternating" => Ok(DemandSchedule::Alternating {
            a: v.want("a")?.as_u64_array("schedule.a")?,
            b: v.want("b")?.as_u64_array("schedule.b")?,
            half_period: v.want("half_period")?.as_u64("schedule.half_period")?,
        }),
        other => Err(bad("schedule", format!("unknown kind `{other}`"))),
    }
}

// ---- InitialConfig ------------------------------------------------------

/// Encodes an initial configuration.
pub fn initial_to_value(initial: &InitialConfig) -> Value {
    let mut t = Value::table();
    match initial {
        InitialConfig::AllIdle => t.insert("kind", Value::Str("all-idle".into())),
        InitialConfig::AllOnTask(j) => {
            t.insert("kind", Value::Str("all-on-task".into()));
            t.insert("task", int(*j as u64));
        }
        InitialConfig::UniformRandom => t.insert("kind", Value::Str("uniform-random".into())),
        InitialConfig::Saturated => t.insert("kind", Value::Str("saturated".into())),
        InitialConfig::SaturatedPlus { extra } => {
            t.insert("kind", Value::Str("saturated-plus".into()));
            t.insert("extra", int(*extra));
        }
        InitialConfig::Inverted => t.insert("kind", Value::Str("inverted".into())),
    }
    t
}

/// Decodes an initial configuration.
pub fn initial_from_value(v: &Value) -> Result<InitialConfig, ConfigError> {
    let kind = v.want("kind")?.as_str("initial.kind")?;
    let allowed: &[&str] = match kind {
        "all-on-task" => &["kind", "task"],
        "saturated-plus" => &["kind", "extra"],
        _ => &["kind"],
    };
    check_keys(v, "initial", allowed)?;
    match kind {
        "all-idle" => Ok(InitialConfig::AllIdle),
        "all-on-task" => Ok(InitialConfig::AllOnTask(
            v.want("task")?.as_usize("initial.task")?,
        )),
        "uniform-random" => Ok(InitialConfig::UniformRandom),
        "saturated" => Ok(InitialConfig::Saturated),
        "saturated-plus" => Ok(InitialConfig::SaturatedPlus {
            extra: v.want("extra")?.as_u64("initial.extra")?,
        }),
        "inverted" => Ok(InitialConfig::Inverted),
        other => Err(bad("initial", format!("unknown kind `{other}`"))),
    }
}

// ---- Timeline -----------------------------------------------------------

/// Writes an event's `kind` and payload into an existing table (used
/// both for `[[timeline]]` entries and the events inside a cycle).
fn event_into_table(event: &Event, t: &mut Value) {
    match event {
        Event::SetDemands(demands) => {
            t.insert("kind", Value::Str("set-demands".into()));
            t.insert("demands", u64_array(demands));
        }
        Event::Kill { count } => {
            t.insert("kind", Value::Str("kill".into()));
            t.insert("count", int(*count as u64));
        }
        Event::Spawn { count } => {
            t.insert("kind", Value::Str("spawn".into()));
            t.insert("count", int(*count as u64));
        }
        Event::Scramble => t.insert("kind", Value::Str("scramble".into())),
        Event::StampedeTo(j) => {
            t.insert("kind", Value::Str("stampede-to".into()));
            t.insert("task", int(*j as u64));
        }
        Event::SetNoise(model) => {
            t.insert("kind", Value::Str("set-noise".into()));
            t.insert("noise", noise_to_value(model));
        }
    }
}

/// Encodes one scripted event (no scheduling fields).
pub fn event_to_value(event: &Event) -> Value {
    let mut t = Value::table();
    event_into_table(event, &mut t);
    t
}

/// The payload keys each event kind allows, shared by one-shot entries
/// (which add `at`) and cycle events. `None` for unknown kinds, so the
/// caller reports the bad `kind` instead of flagging its payload keys.
fn event_keys(kind: &str, with_at: bool) -> Option<Vec<&'static str>> {
    let mut keys: Vec<&'static str> = if with_at {
        vec!["at", "kind"]
    } else {
        vec!["kind"]
    };
    let payload: &[&str] = match kind {
        "set-demands" => &["demands"],
        "kill" | "spawn" => &["count"],
        "stampede-to" => &["task"],
        "set-noise" => &["noise"],
        "scramble" => &[],
        _ => return None,
    };
    keys.extend(payload);
    Some(keys)
}

fn event_from_table(v: &Value, what: &str) -> Result<Event, ConfigError> {
    let kind = v.want("kind")?.as_str("event.kind")?;
    match kind {
        "set-demands" => Ok(Event::SetDemands(
            v.want("demands")?.as_u64_array("event.demands")?,
        )),
        "kill" => Ok(Event::Kill {
            count: v.want("count")?.as_usize("event.count")?,
        }),
        "spawn" => Ok(Event::Spawn {
            count: v.want("count")?.as_usize("event.count")?,
        }),
        "scramble" => Ok(Event::Scramble),
        "stampede-to" => Ok(Event::StampedeTo(v.want("task")?.as_usize("event.task")?)),
        "set-noise" => Ok(Event::SetNoise(noise_from_value(v.want("noise")?)?)),
        other => Err(bad(what, format!("unknown event kind `{other}`"))),
    }
}

/// Decodes one scripted event.
pub fn event_from_value(v: &Value) -> Result<Event, ConfigError> {
    if let Some(keys) = v
        .get("kind")
        .and_then(|k| k.as_str("kind").ok())
        .and_then(|kind| event_keys(kind, false))
    {
        check_keys(v, "event", &keys)?;
    }
    event_from_table(v, "event")
}

/// Encodes a timeline as an array of entry tables: one-shot events
/// carry an `at` round, cycles use `kind = "cycle"`.
pub fn timeline_to_value(timeline: &Timeline) -> Value {
    let mut entries = Vec::with_capacity(timeline.events.len() + timeline.cycles.len());
    for timed in &timeline.events {
        let mut t = Value::table();
        t.insert("at", int(timed.at));
        event_into_table(&timed.event, &mut t);
        entries.push(t);
    }
    for cycle in &timeline.cycles {
        let mut t = Value::table();
        t.insert("kind", Value::Str("cycle".into()));
        t.insert("start", int(cycle.start));
        t.insert("period", int(cycle.period));
        t.insert(
            "events",
            Value::Array(cycle.events.iter().map(event_to_value).collect()),
        );
        entries.push(t);
    }
    Value::Array(entries)
}

/// Decodes a timeline from an array of entry tables.
pub fn timeline_from_value(v: &Value) -> Result<Timeline, ConfigError> {
    let what = "timeline";
    let mut timeline = Timeline::new();
    for entry in v.as_array(what)? {
        let kind = entry.want("kind")?.as_str("timeline.kind")?;
        if kind == "cycle" {
            check_keys(
                entry,
                "timeline cycle",
                &["kind", "start", "period", "events"],
            )?;
            let events = entry
                .want("events")?
                .as_array("cycle.events")?
                .iter()
                .map(event_from_value)
                .collect::<Result<Vec<_>, ConfigError>>()?;
            timeline.cycles.push(Cycle {
                start: entry.want("start")?.as_u64("cycle.start")?,
                period: entry.want("period")?.as_u64("cycle.period")?,
                events,
            });
        } else {
            if let Some(keys) = event_keys(kind, true) {
                check_keys(entry, "timeline entry", &keys)?;
            }
            timeline.events.push(TimedEvent {
                at: entry.want("at")?.as_u64("timeline.at")?,
                event: event_from_table(entry, what)?,
            });
        }
    }
    Ok(timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_controllers() -> Vec<ControllerSpec> {
        vec![
            ControllerSpec::Ant(AntParams::new(1.0 / 16.0)),
            ControllerSpec::AntDesync(AntParams {
                gamma: 0.05,
                cs: 2.4,
                cd: 18.0,
            }),
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.4)),
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams {
                paper_literal_leave_prob: true,
                ..PreciseSigmoidParams::new(0.05, 0.4)
            }),
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.05, 0.3)),
            ControllerSpec::Trivial,
            ControllerSpec::ExactGreedy(ExactGreedyParams {
                p_join: 0.4,
                p_leave: 0.1,
            }),
            ControllerSpec::Hysteresis {
                depth: 4,
                lazy: None,
            },
            ControllerSpec::Hysteresis {
                depth: 2,
                lazy: Some(0.5),
            },
            ControllerSpec::Mix(vec![
                (2.0, ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                (
                    1.0,
                    ControllerSpec::ExactGreedy(ExactGreedyParams {
                        p_join: 0.4,
                        p_leave: 0.1,
                    }),
                ),
                (
                    0.5,
                    ControllerSpec::Hysteresis {
                        depth: 3,
                        lazy: None,
                    },
                ),
            ]),
        ]
    }

    fn all_noises() -> Vec<NoiseModel> {
        vec![
            NoiseModel::Sigmoid { lambda: 2.0 },
            NoiseModel::CorrelatedSigmoid {
                lambda: 1.5,
                rho: 0.3,
                seed: 99,
            },
            NoiseModel::Exact,
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::AlwaysLack,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::AlwaysOverload,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::Truthful,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::Inverted,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::AlternateByRound,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::RandomLack(0.25),
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::LoadThreshold(vec![7, 9]),
            },
        ]
    }

    #[test]
    fn every_controller_roundtrips() {
        for spec in all_controllers() {
            let back = controller_from_value(&controller_to_value(&spec)).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn every_noise_roundtrips() {
        for noise in all_noises() {
            let back = noise_from_value(&noise_to_value(&noise)).unwrap();
            assert_eq!(back, noise);
        }
    }

    #[test]
    fn every_initial_roundtrips() {
        for initial in [
            InitialConfig::AllIdle,
            InitialConfig::AllOnTask(2),
            InitialConfig::UniformRandom,
            InitialConfig::Saturated,
            InitialConfig::SaturatedPlus { extra: 11 },
            InitialConfig::Inverted,
        ] {
            let back = initial_from_value(&initial_to_value(&initial)).unwrap();
            assert_eq!(back, initial);
        }
    }

    #[test]
    fn every_timeline_roundtrips() {
        let timelines = [
            Timeline::new().at(5, Event::Kill { count: 5 }),
            Timeline::new()
                .at(3, Event::SetDemands(vec![4, 4]))
                .at(3, Event::Spawn { count: 9 })
                .at(8, Event::Scramble)
                .at(9, Event::StampedeTo(1))
                .at(12, Event::SetNoise(NoiseModel::Sigmoid { lambda: 4.0 })),
            Timeline::new()
                .at(
                    2,
                    Event::SetNoise(NoiseModel::Adversarial {
                        gamma_ad: 0.05,
                        policy: GreyZonePolicy::AlwaysLack,
                    }),
                )
                .every(
                    10,
                    5,
                    vec![Event::SetDemands(vec![1, 2]), Event::SetDemands(vec![2, 1])],
                ),
        ];
        for timeline in timelines {
            let back = timeline_from_value(&timeline_to_value(&timeline)).unwrap();
            assert_eq!(back, timeline);
        }
    }

    #[test]
    fn legacy_schedules_decode_to_their_timeline() {
        // `[schedule]` sections still load; the decoded config carries
        // the compiled timeline.
        let mut root = Value::table();
        root.insert("n", Value::Int(100));
        root.insert("demands", u64_array(&[20, 30]));
        root.insert("controller", controller_to_value(&ControllerSpec::Trivial));
        root.insert("noise", noise_to_value(&NoiseModel::Exact));
        let mut schedule = Value::table();
        schedule.insert("kind", Value::Str("step".into()));
        schedule.insert("at", Value::Int(10));
        schedule.insert("demands", u64_array(&[30, 20]));
        root.insert("schedule", schedule.clone());
        let (config, _, _) = config_from_value(&root).unwrap();
        let expected: Timeline = DemandSchedule::Step {
            at: 10,
            demands: vec![30, 20],
        }
        .into();
        assert_eq!(config.timeline, expected);
        // ...but giving both forms at once is an error.
        root.insert("timeline", timeline_to_value(&expected));
        let err = config_from_value(&root).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
    }

    #[test]
    fn unknown_kinds_are_parse_errors() {
        let mut t = Value::table();
        t.insert("kind", Value::Str("quantum".into()));
        assert!(controller_from_value(&t).is_err());
        assert!(noise_from_value(&t).is_err());
        assert!(schedule_from_value(&t).is_err());
        assert!(initial_from_value(&t).is_err());
        assert!(event_from_value(&t).is_err());
        assert!(timeline_from_value(&Value::Array(vec![t])).is_err());
    }

    #[test]
    fn missing_required_keys_are_parse_errors() {
        let mut t = Value::table();
        t.insert("kind", Value::Str("sigmoid".into()));
        let err = noise_from_value(&t).unwrap_err();
        assert!(err.to_string().contains("lambda"), "{err}");
    }
}
