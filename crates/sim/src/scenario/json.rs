//! A self-contained JSON codec over the shared [`Value`] tree.
//!
//! Standard JSON minus `null` (scenario schemas express absence by
//! omitting the key); duplicate object keys are errors rather than
//! last-wins. Numbers parse as [`Value::Int`] when they are plain
//! integers and as [`Value::Float`] otherwise. Non-finite floats have
//! no JSON literal, so the writer emits the strings
//! `"inf"`/`"-inf"`/`"nan"` as their wire form and
//! [`Value::as_f64`] folds those spellings back into floats — a
//! config with e.g. `cd = inf` round-trips (covered by
//! `non_finite_params_roundtrip_through_json`).

use crate::scenario::value::Value;
use crate::scenario::ConfigError;

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, ConfigError> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(v)
}

/// Serializes a value as pretty-printed JSON.
pub fn write(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, 0, &mut out);
    out.push('\n');
    out
}

fn write_value(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else if x.is_nan() {
                out.push_str("\"nan\"");
            } else if *x > 0.0 {
                out.push_str("\"inf\"");
            } else {
                out.push_str("\"-inf\"");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                write_value(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Table(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                write_string(k, out);
                out.push_str(": ");
                write_value(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn error(&self, msg: impl Into<String>) -> ConfigError {
        ConfigError::Parse(format!("json offset {}: {}", self.pos, msg.into()))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn value(&mut self) -> Result<Value, ConfigError> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(Value::Str),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some('n') => Err(self.error("`null` is not a scenario value; omit the key")),
            Some(c) => Err(self.error(format!("unexpected `{c}`"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ConfigError> {
        for want in word.chars() {
            if self.bump() != Some(want) {
                return Err(self.error(format!("bad literal (expected `{word}`)")));
            }
        }
        Ok(value)
    }

    fn object(&mut self) -> Result<Value, ConfigError> {
        self.bump(); // `{`
        let mut table = Value::table();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(table);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(':') {
                return Err(self.error("expected `:`"));
            }
            let value = self.value()?;
            if table.get(&key).is_some() {
                return Err(self.error(format!("duplicate key \"{key}\"")));
            }
            table.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(table),
                Some(c) => return Err(self.error(format!("expected `,` or `}}`, found `{c}`"))),
                None => return Err(self.error("unterminated object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ConfigError> {
        self.bump(); // `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Value::Array(items)),
                Some(c) => return Err(self.error(format!("expected `,` or `]`, found `{c}`"))),
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ConfigError> {
        self.skip_ws();
        if self.bump() != Some('"') {
            return Err(self.error("expected string"));
        }
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut hex = String::new();
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                                _ => return Err(self.error("bad \\u escape")),
                            }
                        }
                        let code = u32::from_str_radix(&hex, 16).expect("hex digits");
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.error("invalid scalar value"))?,
                        );
                    }
                    Some(c) => return Err(self.error(format!("unknown escape \\{c}"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ConfigError> {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek() == Some('-') {
            text.push('-');
            self.bump();
        }
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.bump();
                }
                '.' | 'e' | 'E' => {
                    is_float = true;
                    text.push(c);
                    self.bump();
                }
                '+' | '-' if text.ends_with('e') || text.ends_with('E') => {
                    text.push(c);
                    self.bump();
                }
                _ => break,
            }
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| self.error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(
            r#"{"n": 4000, "demands": [400, 700, 300],
                "controller": {"kind": "ant", "gamma": 6.25e-2},
                "flag": true, "label": "a\"bA"}"#,
        )
        .unwrap();
        assert_eq!(doc.get("n"), Some(&Value::Int(4000)));
        assert_eq!(
            doc.get("demands").unwrap().as_u64_array("demands").unwrap(),
            vec![400, 700, 300]
        );
        assert_eq!(
            doc.get("controller").unwrap().get("gamma"),
            Some(&Value::Float(0.0625))
        );
        assert_eq!(doc.get("label"), Some(&Value::Str("a\"bA".into())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": }",
            "\"unterminated",
            "nul",
            "null",
            "{} extra",
            "{\"a\": 1,}x",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn duplicate_object_keys_are_errors() {
        let err = parse("{\"seed\": 1, \"seed\": 2}").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn writer_output_reparses_identically() {
        let mut doc = Value::table();
        doc.insert("n", Value::Int(12));
        doc.insert("xs", Value::Array(vec![Value::Int(1), Value::Float(2.5)]));
        doc.insert("s", Value::Str("line\n\"q\"".into()));
        let mut sub = Value::table();
        sub.insert("empty_array", Value::Array(vec![]));
        sub.insert("empty_table", Value::table());
        doc.insert("sub", sub);
        let text = write(&doc);
        assert_eq!(parse(&text).unwrap(), doc, "{text}");
    }
}
