//! The scenario layer: validated construction, declarative files, and
//! multi-seed batches.
//!
//! The paper's theorems are statements over *distributions* of runs —
//! many seeds, many noise models, many demand schedules. This module
//! makes that the unit of work:
//!
//! * [`ScenarioBuilder`] — fluent, `Result`-returning construction of
//!   [`crate::SimConfig`] with a typed [`ConfigError`] for
//!   everything that used to panic at run time;
//! * [`Scenario`] — a named config that round-trips through TOML or
//!   JSON text ([`Scenario::from_toml`], [`Scenario::to_toml`], …) and
//!   files ([`Scenario::load`] / [`Scenario::save`]);
//! * [`Batch`] / [`Sweep`] — fan a scenario out over seed lists and
//!   parameter grids across OS threads, streaming [`RunOutcome`]s that
//!   are bit-identical to individual serial runs.
//!
//! ```
//! use antalloc_sim::{Batch, Scenario};
//!
//! let scenario = Scenario::from_toml(r#"
//!     name = "smoke"
//!     n = 400
//!     demands = [60, 80]
//!     [controller]
//!     kind = "ant"
//!     gamma = 0.0625
//!     [noise]
//!     kind = "sigmoid"
//!     lambda = 2.0
//! "#).unwrap();
//! let outcomes = Batch::new(scenario.config, 50).seeds(0..4).run().unwrap();
//! assert_eq!(outcomes.len(), 4);
//! ```

mod batch;
mod builder;
mod codec;
mod error;
pub mod json;
mod sink;
pub mod toml;
mod value;

use std::path::Path;

pub use batch::{AxisValue, Batch, CapturePolicy, RunOutcome, Sweep, UsePolicy};
pub use builder::{ScenarioBuilder, MAX_TASKS};
pub use codec::{
    condition_from_value, condition_to_value, config_from_value, config_to_value,
    controller_from_value, controller_to_value, event_from_value, event_to_value, gen_from_value,
    gen_to_value, initial_from_value, initial_to_value, noise_from_value, noise_to_value,
    schedule_from_value, timeline_from_value, timeline_to_value, trigger_from_value,
    trigger_to_value,
};
pub use error::ConfigError;
pub use sink::{CsvSink, JsonlSink, RunSink};
pub use value::Value;

use crate::config::SimConfig;

/// A named, file-round-trippable simulation scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Optional human-readable name (the `name` key in files).
    pub name: Option<String>,
    /// The validated configuration.
    pub config: SimConfig,
    /// Whether the scenario opted out of the parameter-window checks
    /// (the `out_of_spec` key); structural validation always applies.
    pub out_of_spec: bool,
}

impl Scenario {
    /// Wraps a config with no name.
    ///
    /// `out_of_spec` is detected from the config itself: a config that
    /// passes structural validation but sits outside the parameter
    /// windows (an ablation/lower-bound scenario) gets the flag set so
    /// its serialized form round-trips through the strict loader.
    pub fn new(config: SimConfig) -> Self {
        let out_of_spec = config.validate().is_err() && config.validate_structure().is_ok();
        Self {
            name: None,
            config,
            out_of_spec,
        }
    }

    /// Names the scenario.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    fn from_value(root: &Value) -> Result<Self, ConfigError> {
        let (config, name, out_of_spec) = config_from_value(root)?;
        if out_of_spec {
            config.validate_structure()?;
        } else {
            config.validate()?;
        }
        Ok(Self {
            name,
            config,
            out_of_spec,
        })
    }

    fn to_value(&self) -> Value {
        config_to_value(&self.config, self.name.as_deref(), self.out_of_spec)
    }

    /// Parses and validates a TOML scenario.
    pub fn from_toml(text: &str) -> Result<Self, ConfigError> {
        Self::from_value(&toml::parse(text)?)
    }

    /// Parses and validates a JSON scenario.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Serializes as TOML.
    pub fn to_toml(&self) -> String {
        toml::write(&self.to_value())
    }

    /// Serializes as JSON.
    pub fn to_json(&self) -> String {
        json::write(&self.to_value())
    }

    /// Loads a scenario file, dispatching on the `.toml`/`.json`
    /// extension (case-insensitive, defaulting to TOML).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ConfigError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::Io(format!("read {}: {e}", path.display())))?;
        if is_json_extension(path) {
            Self::from_json(&text)
        } else {
            Self::from_toml(&text)
        }
    }

    /// Saves the scenario, dispatching on the extension like
    /// [`Scenario::load`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ConfigError> {
        let path = path.as_ref();
        let text = if is_json_extension(path) {
            self.to_json()
        } else {
            self.to_toml()
        };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ConfigError::Io(format!("mkdir {}: {e}", parent.display())))?;
        }
        std::fs::write(path, text)
            .map_err(|e| ConfigError::Io(format!("write {}: {e}", path.display())))
    }
}

fn is_json_extension(path: &Path) -> bool {
    path.extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
}

impl SimConfig {
    /// Serializes this config as a TOML scenario document.
    pub fn to_toml(&self) -> String {
        Scenario::new(self.clone()).to_toml()
    }

    /// Parses a config from a TOML scenario document (structurally
    /// validated; see [`Scenario::from_toml`]).
    pub fn from_toml(text: &str) -> Result<Self, ConfigError> {
        Scenario::from_toml(text).map(|s| s.config)
    }

    /// Serializes this config as a JSON scenario document.
    pub fn to_json(&self) -> String {
        Scenario::new(self.clone()).to_json()
    }

    /// Parses a config from a JSON scenario document.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        Scenario::from_json(text).map(|s| s.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_core::AntParams;
    use antalloc_env::{DemandSchedule, InitialConfig};
    use antalloc_noise::{GreyZonePolicy, NoiseModel};

    use crate::config::ControllerSpec;

    fn rich_scenario() -> Scenario {
        let config = SimConfig::builder(4000, vec![400, 700, 300])
            .noise(NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::LoadThreshold(vec![9, 9, 9]),
            })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .seed(0xC0FFEE)
            .schedule(DemandSchedule::Steps(vec![
                (4000, vec![700, 400, 300]),
                (8000, vec![500, 500, 400]),
            ]))
            .initial(InitialConfig::SaturatedPlus { extra: 7 })
            .build()
            .unwrap();
        Scenario::new(config).named("rich")
    }

    #[test]
    fn toml_and_json_roundtrip_exactly() {
        let scenario = rich_scenario();
        let toml_text = scenario.to_toml();
        let json_text = scenario.to_json();
        assert_eq!(
            Scenario::from_toml(&toml_text).unwrap(),
            scenario,
            "\n{toml_text}"
        );
        assert_eq!(
            Scenario::from_json(&json_text).unwrap(),
            scenario,
            "\n{json_text}"
        );
    }

    #[test]
    fn minimal_toml_uses_defaults() {
        let s = Scenario::from_toml(
            "n = 100\ndemands = [20, 30]\n[controller]\nkind = \"trivial\"\n[noise]\nkind = \"exact\"\n",
        )
        .unwrap();
        assert_eq!(s.config.seed, 0);
        assert!(s.config.timeline.is_empty());
        assert_eq!(s.config.initial, InitialConfig::AllIdle);
        assert_eq!(s.name, None);
    }

    #[test]
    fn invalid_scenarios_fail_with_config_errors_not_panics() {
        // Zero-ant colony.
        let err = Scenario::from_toml(
            "n = 0\ndemands = [1]\n[controller]\nkind = \"trivial\"\n[noise]\nkind = \"exact\"\n",
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::EmptyColony);
        // Schedule task-count mismatch (legacy section, timeline error).
        let err = Scenario::from_toml(
            "n = 10\ndemands = [5, 5]\n[controller]\nkind = \"trivial\"\n[noise]\nkind = \"exact\"\n[schedule]\nkind = \"step\"\nat = 3\ndemands = [1]\n",
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::Timeline(_)), "{err:?}");
        // Parameter window violation (γ > 1/16) is strict by default...
        let gamma_high =
            "n = 10\ndemands = [5]\n[controller]\nkind = \"ant\"\ngamma = 0.125\n[noise]\nkind = \"exact\"\n";
        let err = Scenario::from_toml(gamma_high).unwrap_err();
        assert!(matches!(err, ConfigError::Controller(_)), "{err:?}");
        // ...and explicitly waivable in the file.
        let waived = format!("out_of_spec = true\n{gamma_high}");
        assert!(Scenario::from_toml(&waived).unwrap().out_of_spec);
        // Syntax errors.
        assert!(matches!(
            Scenario::from_toml("n = = 3").unwrap_err(),
            ConfigError::Parse(_)
        ));
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let dir = std::env::temp_dir().join("antalloc_scenario_test");
        let scenario = rich_scenario();
        // Extension dispatch is case-insensitive (`.JSON` is JSON).
        for file in ["s.toml", "s.json", "s.JSON"] {
            let path = dir.join(file);
            scenario.save(&path).unwrap();
            let back = Scenario::load(&path).unwrap();
            assert_eq!(back, scenario, "{file}");
        }
        assert!(std::fs::read_to_string(dir.join("s.JSON"))
            .unwrap()
            .trim_start()
            .starts_with('{'));
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            Scenario::load(dir.join("missing.toml")),
            Err(ConfigError::Io(_))
        ));
    }

    #[test]
    fn out_of_spec_flag_survives_roundtrip() {
        let config = SimConfig::builder(100, vec![10])
            .controller(ControllerSpec::Ant(AntParams::new(0.125)))
            .out_of_spec_params()
            .build()
            .unwrap();
        // Scenario::new detects that the config is structurally sound
        // but outside the windows, and sets the flag automatically.
        let scenario = Scenario::new(config.clone());
        assert!(scenario.out_of_spec);
        let text = scenario.to_toml();
        let back = Scenario::from_toml(&text).unwrap();
        assert!(back.out_of_spec);
        assert_eq!(back.config, scenario.config);
        // The bare SimConfig wrappers take the same path: an
        // out-of-spec config's own serialization must reload.
        let direct = SimConfig::from_toml(&config.to_toml()).unwrap();
        assert_eq!(direct, config);
        let via_json = SimConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(via_json, config);
    }

    #[test]
    fn unknown_keys_are_rejected_not_ignored() {
        // A typo'd section or key must fail loudly: silently running a
        // different scenario is the worst failure mode a simulation
        // study can have.
        let base =
            "n = 10\ndemands = [5]\n[controller]\nkind = \"trivial\"\n[noise]\nkind = \"exact\"\n";
        assert!(Scenario::from_toml(base).is_ok());
        for bad in [
            format!("{base}[schedul]\nkind = \"static\"\n"), // section typo
            format!("{base}[schedule]\nkind = \"static\"\nperiods = 3\n"), // key typo
            base.replace("kind = \"trivial\"", "kind = \"trivial\"\nCd = 1e6"),
            base.replace("kind = \"exact\"", "kind = \"exact\"\nlambd = 2.0"),
            format!("sed = 4\n{base}"), // top-level typo of `seed`
        ] {
            let err = Scenario::from_toml(&bad).unwrap_err();
            assert!(
                matches!(err, ConfigError::Parse(_)),
                "`{bad}` should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn non_finite_params_roundtrip_through_json() {
        // cd = +inf passes strict validation (leave probability 0); its
        // JSON form must survive the writer's string encoding.
        let mut params = AntParams::new(1.0 / 32.0);
        params.cd = f64::INFINITY;
        let config = SimConfig::builder(100, vec![10])
            .controller(ControllerSpec::Ant(params))
            .build()
            .unwrap();
        let back = SimConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
        let back = SimConfig::from_toml(&config.to_toml()).unwrap();
        assert_eq!(back, config);
    }
}
