//! The fluent, validating scenario builder.

use antalloc_env::{ArenaConfig, DemandSchedule, Event, InitialConfig, Timeline};
use antalloc_noise::NoiseModel;

use crate::config::{ControllerSpec, SimConfig};
use crate::scenario::ConfigError;

/// Hard cap on the task count `k`. The paper's regime is `k ≪ n`
/// (single digits in every experiment); the cap keeps pathological
/// configs from quietly allocating per-task state the engine was never
/// sized for, and lets the ≤ 64-task bitmask sensing fast path treat
/// its bound as a checked-once precondition rather than a per-draw
/// assertion.
pub const MAX_TASKS: usize = 4096;

/// How much validation a build performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Strictness {
    /// Structural checks plus the papers' admissible parameter windows.
    Strict,
    /// Structural checks only — for ablation and lower-bound scenarios
    /// that deliberately run outside the assumptions.
    OutOfSpec,
}

/// Builds a validated [`SimConfig`].
///
/// Replaces the old panic-prone `SimConfig::new(..)` + `build()` flow:
/// every constraint that used to explode mid-run (or silently produce a
/// meaningless run) is checked here, and violations come back as a
/// typed [`ConfigError`].
///
/// ```
/// use antalloc_core::AntParams;
/// use antalloc_noise::NoiseModel;
/// use antalloc_sim::{ControllerSpec, SimConfig};
///
/// let config = SimConfig::builder(4000, vec![400, 700, 300])
///     .noise(NoiseModel::Sigmoid { lambda: 2.0 })
///     .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
///     .seed(0xC0FFEE)
///     .build()
///     .expect("valid scenario");
/// assert_eq!(config.n, 4000);
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    config: SimConfig,
    strictness: Strictness,
}

impl ScenarioBuilder {
    /// Starts from a colony size and demand vector, with defaults for
    /// everything else: sigmoid noise (λ = 2), Algorithm Ant at its
    /// default γ, seed 0, static demands, all-idle start.
    pub fn new(n: usize, demands: Vec<u64>) -> Self {
        Self {
            config: SimConfig {
                n,
                demands,
                noise: NoiseModel::Sigmoid { lambda: 2.0 },
                controller: ControllerSpec::Ant(antalloc_core::AntParams::default()),
                seed: 0,
                timeline: Timeline::new(),
                initial: InitialConfig::AllIdle,
                arena: None,
            },
            strictness: Strictness::Strict,
        }
    }

    /// Continues from an existing config (e.g. one loaded from a file).
    pub fn from_config(config: SimConfig) -> Self {
        Self {
            config,
            strictness: Strictness::Strict,
        }
    }

    /// Sets the feedback generator.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.config.noise = noise;
        self
    }

    /// Sets the algorithm every ant runs.
    pub fn controller(mut self, controller: ControllerSpec) -> Self {
        self.config.controller = controller;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the event timeline (replacing any previous one).
    pub fn timeline(mut self, timeline: Timeline) -> Self {
        self.config.timeline = timeline;
        self
    }

    /// Appends one scripted event to the timeline (builder sugar; see
    /// [`Timeline::at`]).
    pub fn event(mut self, round: u64, event: Event) -> Self {
        let timeline = std::mem::take(&mut self.config.timeline);
        self.config.timeline = timeline.at(round, event);
        self
    }

    /// Appends one conditional trigger to the timeline (builder sugar;
    /// see [`antalloc_env::Trigger`]).
    pub fn trigger(mut self, trigger: antalloc_env::Trigger) -> Self {
        let timeline = std::mem::take(&mut self.config.timeline);
        self.config.timeline = timeline.trigger(trigger);
        self
    }

    /// Appends one seeded shock-schedule generator to the timeline
    /// (builder sugar; see [`antalloc_env::TimelineGen`]).
    pub fn generate(mut self, generator: antalloc_env::TimelineGen) -> Self {
        let timeline = std::mem::take(&mut self.config.timeline);
        self.config.timeline = timeline.generate(generator);
        self
    }

    /// Sets the timeline from a legacy demand schedule (thin
    /// constructor: steps become `SetDemands` events, alternation a
    /// two-event cycle). Replaces any previous timeline.
    pub fn schedule(mut self, schedule: DemandSchedule) -> Self {
        self.config.timeline = schedule.into();
        self
    }

    /// Sets the initial configuration.
    pub fn initial(mut self, initial: InitialConfig) -> Self {
        self.config.initial = initial;
        self
    }

    /// Pins the tasks to spatial sites (see
    /// [`antalloc_env::ArenaConfig`]); ants then sense demand locally
    /// and idle ants wander between sites. `None` (the default) is the
    /// paper's well-mixed colony.
    pub fn arena(mut self, arena: ArenaConfig) -> Self {
        self.config.arena = Some(arena);
        self
    }

    /// Skips the admissible-parameter-window checks (γ ranges, pause
    /// probabilities, …) while keeping all structural validation.
    ///
    /// For ablation and lower-bound scenarios that deliberately violate
    /// the papers' assumptions; the run is still well-defined, just not
    /// covered by the theorems.
    pub fn out_of_spec_params(mut self) -> Self {
        self.strictness = Strictness::OutOfSpec;
        self
    }

    /// Validates and returns the finished config.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        validate(&self.config, self.strictness)?;
        Ok(self.config)
    }
}

impl SimConfig {
    /// Starts a [`ScenarioBuilder`]; see its docs for the defaults.
    pub fn builder(n: usize, demands: Vec<u64>) -> ScenarioBuilder {
        ScenarioBuilder::new(n, demands)
    }

    /// Full validation: structural soundness plus the papers'
    /// admissible parameter windows.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate(self, Strictness::Strict)
    }

    /// Structural validation only — everything that would make a run
    /// panic or be ill-defined, ignoring parameter windows. This is the
    /// check both engines perform at build time.
    pub fn validate_structure(&self) -> Result<(), ConfigError> {
        validate(self, Strictness::OutOfSpec)
    }
}

pub(crate) fn validate(config: &SimConfig, strictness: Strictness) -> Result<(), ConfigError> {
    if config.n == 0 {
        return Err(ConfigError::EmptyColony);
    }
    if config.demands.is_empty() {
        return Err(ConfigError::NoTasks);
    }
    if let Some(task) = config.demands.iter().position(|&d| d == 0) {
        return Err(ConfigError::ZeroDemand { task });
    }
    let k = config.demands.len();
    if k > MAX_TASKS {
        return Err(ConfigError::TooManyTasks {
            tasks: k,
            max: MAX_TASKS,
        });
    }
    validate_controller(&config.controller, k, strictness)?;
    if let Some(arena) = &config.arena {
        arena.validate(k).map_err(ConfigError::Arena)?;
    }
    config.noise.validate(k).map_err(ConfigError::Noise)?;
    config
        .timeline
        .validate(k, config.n)
        .map_err(ConfigError::Timeline)?;
    config
        .timeline
        .validate_triggers(k)
        .map_err(ConfigError::Trigger)?;
    validate_initial(&config.initial, k)?;
    Ok(())
}

fn validate_controller(
    spec: &ControllerSpec,
    num_tasks: usize,
    strictness: Strictness,
) -> Result<(), ConfigError> {
    // Mixes validate recursively: shape here, each sub-spec in full.
    if let ControllerSpec::Mix(parts) = spec {
        if parts.is_empty() {
            return Err(ConfigError::Controller(
                "mix must contain at least one sub-spec".into(),
            ));
        }
        if parts.len() > usize::from(u16::MAX) {
            return Err(ConfigError::Controller(format!(
                "mix has {} sub-specs; at most {} are supported",
                parts.len(),
                u16::MAX
            )));
        }
        for (i, (weight, sub)) in parts.iter().enumerate() {
            if !(weight.is_finite() && *weight > 0.0) {
                return Err(ConfigError::Controller(format!(
                    "mix part {i}: weight must be positive and finite, got {weight}"
                )));
            }
            if matches!(sub, ControllerSpec::Mix(_)) {
                return Err(ConfigError::Controller(format!(
                    "mix part {i}: nested mixes are not allowed"
                )));
            }
            // Sub-specs see the full validation at the caller's
            // strictness (structural always; windows when strict).
            validate_controller(sub, num_tasks, strictness)
                .map_err(|e| ConfigError::Controller(format!("mix part {i}: {e}")))?;
        }
        return Ok(());
    }
    // Structural checks: shapes that make the machine itself nonsensical.
    match spec {
        ControllerSpec::Hysteresis { depth, lazy } => {
            if *depth == 0 {
                return Err(ConfigError::Controller(
                    "hysteresis depth must be at least 1".into(),
                ));
            }
            if let Some(p) = lazy {
                if !(p.is_finite() && *p > 0.0 && *p <= 1.0) {
                    return Err(ConfigError::Controller(format!(
                        "lazy switching probability must be in (0, 1], got {p}"
                    )));
                }
            }
            if num_tasks != 1 && strictness == Strictness::Strict {
                return Err(ConfigError::Controller(format!(
                    "hysteresis machines observe a single task, colony has {num_tasks}"
                )));
            }
        }
        ControllerSpec::ExactGreedy(p) => {
            for (name, v) in [("p_join", p.p_join), ("p_leave", p.p_leave)] {
                if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                    return Err(ConfigError::Controller(format!(
                        "{name} must be a probability, got {v}"
                    )));
                }
            }
        }
        // A gain outside (0, 1] is not a probability: the draw itself
        // is ill-defined, so the check is structural, not a window.
        ControllerSpec::Proportional(p) => {
            p.validate().map_err(ConfigError::Controller)?;
        }
        _ => {}
    }
    if strictness == Strictness::OutOfSpec {
        return Ok(());
    }
    // Admissible windows, per the algorithms' own validators.
    match spec {
        ControllerSpec::Ant(p) | ControllerSpec::AntDesync(p) => {
            p.validate().map_err(ConfigError::Controller)
        }
        ControllerSpec::PreciseSigmoid(p) => p.validate().map_err(ConfigError::Controller),
        ControllerSpec::PreciseAdversarial(p) => p.validate().map_err(ConfigError::Controller),
        ControllerSpec::Trivial
        | ControllerSpec::ExactGreedy(_)
        | ControllerSpec::Proportional(_)
        | ControllerSpec::Hysteresis { .. } => Ok(()),
        // Handled (recursively) by the structural pass above.
        ControllerSpec::Mix(_) => Ok(()),
    }
}

fn validate_initial(initial: &InitialConfig, num_tasks: usize) -> Result<(), ConfigError> {
    if let InitialConfig::AllOnTask(j) = initial {
        if *j >= num_tasks {
            return Err(ConfigError::Initial(format!(
                "all-on-task references task {j}, colony has {num_tasks} tasks"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_core::AntParams;
    use antalloc_noise::GreyZonePolicy;

    fn base() -> ScenarioBuilder {
        SimConfig::builder(100, vec![20, 30])
    }

    #[test]
    fn defaults_build() {
        let cfg = base().build().expect("defaults are valid");
        assert!(cfg.timeline.is_empty());
        assert_eq!(cfg.initial, InitialConfig::AllIdle);
    }

    #[test]
    fn zero_ants_and_empty_or_zero_demands_are_rejected() {
        assert_eq!(
            SimConfig::builder(0, vec![1]).build().unwrap_err(),
            ConfigError::EmptyColony
        );
        assert_eq!(
            SimConfig::builder(10, vec![]).build().unwrap_err(),
            ConfigError::NoTasks
        );
        assert_eq!(
            SimConfig::builder(10, vec![5, 0]).build().unwrap_err(),
            ConfigError::ZeroDemand { task: 1 }
        );
    }

    #[test]
    fn schedule_mismatch_is_rejected_at_build_time() {
        let err = base()
            .schedule(DemandSchedule::Step {
                at: 5,
                demands: vec![1, 2, 3],
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Timeline(_)), "{err:?}");
    }

    #[test]
    fn timeline_defects_are_rejected_at_build_time() {
        // Unsorted events.
        let err = base()
            .event(9, Event::Scramble)
            .event(5, Event::Scramble)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Timeline(_)), "{err:?}");
        // Kill below zero population (colony has 100 ants).
        let err = base()
            .event(5, Event::Kill { count: 100 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("below 1"), "{err}");
        // Stampede onto a nonexistent task.
        let err = base().event(5, Event::StampedeTo(7)).build().unwrap_err();
        assert!(matches!(err, ConfigError::Timeline(_)), "{err:?}");
        // A noise switch to an invalid model.
        let err = base()
            .event(5, Event::SetNoise(NoiseModel::Sigmoid { lambda: -2.0 }))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Timeline(_)), "{err:?}");
        // Alternating with zero half-period compiles to a degenerate
        // cycle, caught here instead of dividing by zero at run time.
        let err = base()
            .schedule(DemandSchedule::Alternating {
                a: vec![20, 30],
                b: vec![30, 20],
                half_period: 0,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Timeline(_)), "{err:?}");
        // A well-formed shock script builds.
        assert!(base()
            .event(5, Event::Kill { count: 50 })
            .event(8, Event::SetDemands(vec![10, 15]))
            .event(12, Event::Scramble)
            .build()
            .is_ok());
    }

    #[test]
    fn controller_window_violations_are_rejected_unless_relaxed() {
        let spec = ControllerSpec::Ant(AntParams::new(0.125)); // γ > 1/16
        let err = base().controller(spec.clone()).build().unwrap_err();
        assert!(matches!(err, ConfigError::Controller(_)), "{err:?}");
        let cfg = base()
            .controller(spec)
            .out_of_spec_params()
            .build()
            .expect("out-of-spec builds relaxed");
        assert!(cfg.validate().is_err());
        assert!(cfg.validate_structure().is_ok());
    }

    #[test]
    fn structural_controller_errors_survive_relaxation() {
        let err = SimConfig::builder(10, vec![5])
            .controller(ControllerSpec::Hysteresis {
                depth: 0,
                lazy: None,
            })
            .out_of_spec_params()
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Controller(_)));
    }

    #[test]
    fn noise_violations_are_rejected() {
        for noise in [
            NoiseModel::Sigmoid { lambda: 0.0 },
            NoiseModel::CorrelatedSigmoid {
                lambda: 1.0,
                rho: 1.5,
                seed: 0,
            },
            NoiseModel::Adversarial {
                gamma_ad: 1.0,
                policy: GreyZonePolicy::Truthful,
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.1,
                policy: GreyZonePolicy::RandomLack(-0.1),
            },
            NoiseModel::Adversarial {
                gamma_ad: 0.1,
                policy: GreyZonePolicy::LoadThreshold(vec![5]),
            },
        ] {
            let err = base().noise(noise.clone()).build().unwrap_err();
            assert!(matches!(err, ConfigError::Noise(_)), "{noise:?}: {err:?}");
        }
    }

    #[test]
    fn initial_task_out_of_range_is_rejected() {
        let err = base()
            .initial(InitialConfig::AllOnTask(2))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Initial(_)));
        assert!(base().initial(InitialConfig::AllOnTask(1)).build().is_ok());
    }
}
