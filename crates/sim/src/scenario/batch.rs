//! Multi-seed batches and parameter sweeps over OS threads.
//!
//! A [`Batch`] fans one scenario out over a seed list; a [`Sweep`] adds
//! parameter axes (a full Cartesian grid). Runs execute on a pool of
//! worker threads pulling jobs from a shared queue — the same
//! fixed-thread discipline as the engine's `run_parallel` — but each
//! *run* steps serially, so every per-seed result is bit-identical to
//! running that seed alone. Results stream to the caller in completion
//! order via [`Batch::run_with`] / [`Sweep::run_with`], or arrive
//! sorted in job order from `run()`.
//!
//! ## The sweep fast path
//!
//! Jobs are never materialized: job `i` of the `grid × seeds` matrix is
//! *derived on demand* from (base config, axis setters, seed list), so
//! a million-run sweep holds O(workers) configs, not a million clones.
//! Each worker keeps one scratch [`SimConfig`] (re-derived only when
//! its grid point changes), one shared per-grid-point `params` arc, and
//! one [`SyncEngine`] reused across jobs via
//! [`SyncEngine::reset_from`] — bit-identical to building a fresh
//! engine per job, which [`Sweep::engine_reuse`] can force for A/B
//! measurement. Setter-broken configs are caught by a
//! one-pass-per-grid-point structural precheck before any worker
//! starts.
//!
//! ## The durable store
//!
//! [`Sweep::store`] attaches an `antalloc_store::CheckpointStore`:
//! each run's outcome is keyed by a fingerprint of (canonical scenario
//! TOML, seed, warmup, rounds), verified entries are served without
//! running, and computed results are written back per
//! [`CapturePolicy`] — so a sweep killed partway restarts and
//! recomputes only what is missing, bit-identically (cached outcomes
//! *are* the bytes the original run produced). Any unusable entry —
//! truncated, bit-flipped, version-skewed, torn — degrades to a
//! recomputed run under [`UsePolicy::IfFresh`]; only
//! [`UsePolicy::Require`] turns a miss into an error.
//! [`Sweep::from_round`] adds a warm start: one shared prefix run of
//! the base scenario per seed (itself cached as a checkpoint entry)
//! is forked into every grid point via [`Checkpoint::fork_into`]. See
//! docs/CHECKPOINTS.md § Durable store.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

pub use antalloc_store::{CapturePolicy, UsePolicy};
use antalloc_store::{CheckpointStore, EntryKind, Fingerprint, FingerprintBuilder};
use parking_lot::Mutex;

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::engine::SyncEngine;
use crate::observer::{NullObserver, RunSummary};
use crate::scenario::sink::RunSink;
use crate::scenario::ConfigError;

/// Domain tag of outcome fingerprints; bump when the outcome payload
/// layout changes so stale entries become misses, not misreads.
const OUTCOME_DOMAIN: &str = "antalloc.outcome.v1";

/// Domain tag of shared-prefix checkpoint fingerprints. The payload is
/// a self-versioned checkpoint stream, so this only needs bumping if
/// the *inputs* to the key change meaning.
const PREFIX_DOMAIN: &str = "antalloc.prefix-checkpoint.v1";

/// One sweep-axis coordinate as recorded in a [`RunOutcome`].
///
/// Numeric axes ([`Sweep::axis`]) record the value itself; labeled
/// axes ([`Sweep::axis_labeled`] — controller kinds, timelines, mix
/// weights, anything non-numeric) record the point's label.
#[derive(Clone, Debug, PartialEq)]
pub enum AxisValue {
    /// A numeric grid point.
    Float(f64),
    /// A labeled (categorical) grid point.
    Text(String),
}

impl core::fmt::Display for AxisValue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AxisValue::Float(x) => write!(f, "{x}"),
            AxisValue::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for AxisValue {
    fn from(x: f64) -> Self {
        AxisValue::Float(x)
    }
}

impl From<String> for AxisValue {
    fn from(s: String) -> Self {
        AxisValue::Text(s)
    }
}

impl From<&str> for AxisValue {
    fn from(s: &str) -> Self {
        AxisValue::Text(s.to_string())
    }
}

/// The measured outcome of one run in a batch or sweep.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Position in the batch's job order (stable across thread counts).
    pub index: usize,
    /// The seed this run used.
    pub seed: u64,
    /// Sweep-axis values applied to the base config (empty for plain
    /// batches), as `(axis name, value)` pairs. Shared per grid point:
    /// every outcome of the same grid point holds the same arc rather
    /// than its own clone of the label vector.
    pub params: Arc<[(String, AxisValue)]>,
    /// Rounds measured (after warmup).
    pub rounds: u64,
    /// Regret summary over the measured window.
    pub summary: RunSummary,
    /// Instantaneous regret at the end of the run.
    pub final_regret: u64,
    /// Final per-task loads.
    pub final_loads: Vec<u64>,
    /// Whether this outcome was served from the durable store instead
    /// of being computed (always `false` without [`Sweep::store`]).
    pub cached: bool,
}

/// Runs one scenario across many seeds.
#[derive(Clone)]
pub struct Batch {
    config: SimConfig,
    seeds: Vec<u64>,
    warmup: u64,
    rounds: u64,
    threads: usize,
    threads_per_job: usize,
    reuse_engines: bool,
    store: Option<Arc<CheckpointStore>>,
    use_policy: UsePolicy,
    capture_policy: CapturePolicy,
}

impl Batch {
    /// A batch measuring `rounds` rounds per run; seeds default to the
    /// config's own seed, warmup to 0, threads to the available
    /// parallelism.
    pub fn new(config: SimConfig, rounds: u64) -> Self {
        let seed = config.seed;
        Self {
            config,
            seeds: vec![seed],
            warmup: 0,
            rounds,
            threads: default_threads(),
            threads_per_job: 1,
            reuse_engines: true,
            store: None,
            use_policy: UsePolicy::default(),
            capture_policy: CapturePolicy::default(),
        }
    }

    /// Replaces the seed list (e.g. `0..32`).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Attaches a durable result store; see [`Sweep::store`].
    pub fn store(mut self, store: Arc<CheckpointStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// When to serve runs from the store; see [`Sweep::use_policy`].
    pub fn use_policy(mut self, policy: UsePolicy) -> Self {
        self.use_policy = policy;
        self
    }

    /// When to write results back; see [`Sweep::capture_policy`].
    pub fn capture_policy(mut self, policy: CapturePolicy) -> Self {
        self.capture_policy = policy;
        self
    }

    /// Unobserved rounds before measurement starts.
    pub fn warmup(mut self, rounds: u64) -> Self {
        self.warmup = rounds;
        self
    }

    /// Worker threads for the batch (runs themselves stay serial unless
    /// [`Batch::threads_per_job`] raises the per-job count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Threads each *job* may use internally via the engine's
    /// `run_parallel` (default 1: jobs step serially).
    ///
    /// **Thread-split policy.** Prefer batch-level parallelism first —
    /// independent seeds scale embarrassingly and share nothing, so
    /// `threads(t)` with serial jobs is the default and wins whenever
    /// there are at least as many jobs as cores. Raise
    /// `threads_per_job` only for huge single colonies (≫ 100k ants)
    /// where per-run latency matters or where few jobs would leave
    /// cores idle; keep `threads × threads_per_job` within the machine.
    /// Per-seed results are bit-identical either way (the engine's
    /// parallel path guarantees it), so this knob trades latency
    /// against throughput, never reproducibility.
    pub fn threads_per_job(mut self, threads: usize) -> Self {
        self.threads_per_job = threads.max(1);
        self
    }

    /// Whether workers reuse their engine across jobs (default `true`);
    /// see [`Sweep::engine_reuse`].
    pub fn engine_reuse(mut self, reuse: bool) -> Self {
        self.reuse_engines = reuse;
        self
    }

    /// Runs every seed; results are in seed-list order.
    pub fn run(&self) -> Result<Vec<RunOutcome>, ConfigError> {
        self.as_sweep().run()
    }

    /// Runs every seed, streaming each outcome (in completion order) to
    /// `on_outcome` as it lands; returns the full sorted list.
    pub fn run_with(
        &self,
        on_outcome: impl FnMut(&RunOutcome),
    ) -> Result<Vec<RunOutcome>, ConfigError> {
        self.as_sweep().run_with(on_outcome)
    }

    /// Runs every seed, streaming each outcome to `on_outcome` and
    /// **dropping it afterwards** — memory stays flat however many
    /// seeds run. Returns the number of runs completed.
    pub fn for_each(&self, on_outcome: impl FnMut(&RunOutcome)) -> Result<usize, ConfigError> {
        self.as_sweep().for_each(on_outcome)
    }

    /// Streams every outcome into `sink` (completion order) without
    /// accumulating; sink IO failures surface as [`ConfigError::Io`].
    pub fn stream_into(&self, sink: &mut dyn RunSink) -> Result<usize, ConfigError> {
        self.as_sweep().stream_into(sink)
    }

    /// Runs seeds until `on_outcome` returns `false`; see
    /// [`Sweep::run_while`].
    pub fn run_while(
        &self,
        on_outcome: impl FnMut(&RunOutcome) -> bool,
    ) -> Result<usize, ConfigError> {
        self.as_sweep().run_while(on_outcome)
    }

    fn as_sweep(&self) -> Sweep {
        Sweep {
            base: self.config.clone(),
            axes: Vec::new(),
            seeds: self.seeds.clone(),
            warmup: self.warmup,
            rounds: self.rounds,
            threads: self.threads,
            threads_per_job: self.threads_per_job,
            reuse_engines: self.reuse_engines,
            store: self.store.clone(),
            use_policy: self.use_policy,
            capture_policy: self.capture_policy,
            from_round: None,
        }
    }
}

/// A prepared grid point: the recorded coordinate plus a rewriter
/// already bound to the point's value.
type AxisPoint = (AxisValue, Arc<dyn Fn(&mut SimConfig) + Send + Sync>);

/// One sweep dimension: a named list of prepared grid points. Numeric
/// and labeled axes both lower to this, so the grid machinery never
/// cares what a point *is* — controller kinds, whole timelines and mix
/// weights sweep exactly like `f64` parameters.
struct Axis {
    name: String,
    points: Vec<AxisPoint>,
}

/// Runs a scenario over a parameter grid × seed list.
///
/// ```
/// use antalloc_sim::{Batch, SimConfig, Sweep};
///
/// let base = SimConfig::builder(400, vec![60, 80]).build().unwrap();
/// let outcomes = Sweep::new(base)
///     .axis("lambda", [1.0, 4.0], |cfg, lambda| {
///         cfg.noise = antalloc_noise::NoiseModel::Sigmoid { lambda };
///     })
///     .seeds(0..2)
///     .rounds(50)
///     .threads(2)
///     .run()
///     .unwrap();
/// assert_eq!(outcomes.len(), 4); // 2 grid points × 2 seeds
/// ```
pub struct Sweep {
    base: SimConfig,
    axes: Vec<Axis>,
    seeds: Vec<u64>,
    warmup: u64,
    rounds: u64,
    threads: usize,
    threads_per_job: usize,
    reuse_engines: bool,
    store: Option<Arc<CheckpointStore>>,
    use_policy: UsePolicy,
    capture_policy: CapturePolicy,
    from_round: Option<u64>,
}

impl Sweep {
    /// A sweep with no axes yet (equivalent to a one-seed batch of 0
    /// rounds until configured).
    pub fn new(base: SimConfig) -> Self {
        let seed = base.seed;
        Self {
            base,
            axes: Vec::new(),
            seeds: vec![seed],
            warmup: 0,
            rounds: 0,
            threads: default_threads(),
            threads_per_job: 1,
            reuse_engines: true,
            store: None,
            use_policy: UsePolicy::default(),
            capture_policy: CapturePolicy::default(),
            from_round: None,
        }
    }

    /// Adds a numeric grid axis: for each of `values`, `apply` rewrites
    /// the config before the run.
    pub fn axis(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = f64>,
        apply: impl Fn(&mut SimConfig, f64) + Send + Sync + 'static,
    ) -> Self {
        let apply = Arc::new(apply);
        self.axis_labeled(
            name,
            values.into_iter().map(|v| (AxisValue::Float(v), v)),
            move |cfg, &v| apply(cfg, v),
        )
    }

    /// Adds a labeled grid axis over arbitrary values: each point is a
    /// `(label, value)` pair and `apply` rewrites the config from the
    /// value. This is how non-`f64` dimensions sweep — controller
    /// *kinds*, whole timelines, mix weight vectors:
    ///
    /// ```
    /// use antalloc_core::{AntParams, ExactGreedyParams};
    /// use antalloc_sim::{ControllerSpec, SimConfig, Sweep};
    ///
    /// let base = SimConfig::builder(400, vec![60, 80]).build().unwrap();
    /// let outcomes = Sweep::new(base)
    ///     .axis_labeled(
    ///         "controller",
    ///         [
    ///             ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
    ///             ("greedy", ControllerSpec::ExactGreedy(ExactGreedyParams::default())),
    ///         ],
    ///         |cfg, spec| cfg.controller = spec.clone(),
    ///     )
    ///     .rounds(20)
    ///     .threads(2)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(outcomes.len(), 2);
    /// ```
    pub fn axis_labeled<T: Send + Sync + 'static>(
        mut self,
        name: impl Into<String>,
        points: impl IntoIterator<Item = (impl Into<AxisValue>, T)>,
        apply: impl Fn(&mut SimConfig, &T) + Send + Sync + 'static,
    ) -> Self {
        let apply = Arc::new(apply);
        self.axes.push(Axis {
            name: name.into(),
            points: points
                .into_iter()
                .map(|(label, value)| {
                    let apply = apply.clone();
                    let setter: Arc<dyn Fn(&mut SimConfig) + Send + Sync> =
                        Arc::new(move |cfg: &mut SimConfig| apply(cfg, &value));
                    (label.into(), setter)
                })
                .collect(),
        });
        self
    }

    /// Crosses two labeled point lists into the point list of a single
    /// labeled axis — the `(controller × timeline)` grids the
    /// robustness benches sweep, with one shared `a×b` label per cell
    /// instead of two separate columns.
    ///
    /// Use it when the two dimensions are *applied together* (one
    /// setter sees both values) or when downstream tooling groups by
    /// one combined key; use two [`Sweep::axis_labeled`] calls when the
    /// dimensions should stay separate outcome columns.
    ///
    /// ```
    /// use antalloc_core::{AntParams, ExactGreedyParams};
    /// use antalloc_env::{Event, Timeline};
    /// use antalloc_sim::{ControllerSpec, SimConfig, Sweep};
    ///
    /// let base = SimConfig::builder(400, vec![60, 80]).build().unwrap();
    /// let controllers = [
    ///     ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
    ///     ("greedy", ControllerSpec::ExactGreedy(ExactGreedyParams::default())),
    /// ];
    /// let shocks = [
    ///     ("calm", Timeline::new()),
    ///     ("kill", Timeline::new().at(10, Event::Kill { count: 100 })),
    /// ];
    /// let outcomes = Sweep::new(base)
    ///     .axis_labeled(
    ///         "controller×shock",
    ///         Sweep::product(controllers, shocks),
    ///         |cfg, (spec, timeline)| {
    ///             cfg.controller = spec.clone();
    ///             cfg.timeline = timeline.clone();
    ///         },
    ///     )
    ///     .rounds(20)
    ///     .threads(2)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(outcomes.len(), 4); // the full 2 × 2 grid
    /// ```
    pub fn product<A: Clone, B: Clone>(
        a: impl IntoIterator<Item = (impl Into<AxisValue>, A)>,
        b: impl IntoIterator<Item = (impl Into<AxisValue>, B)>,
    ) -> Vec<(AxisValue, (A, B))> {
        let b: Vec<(AxisValue, B)> = b
            .into_iter()
            .map(|(label, value)| (label.into(), value))
            .collect();
        let mut points = Vec::new();
        for (a_label, a_value) in a {
            let a_label = a_label.into();
            for (b_label, b_value) in &b {
                points.push((
                    AxisValue::Text(format!("{a_label}×{b_label}")),
                    (a_value.clone(), b_value.clone()),
                ));
            }
        }
        points
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Unobserved rounds before measurement.
    pub fn warmup(mut self, rounds: u64) -> Self {
        self.warmup = rounds;
        self
    }

    /// Measured rounds per run.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Worker threads (see [`Batch::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Threads each job may use internally; see
    /// [`Batch::threads_per_job`] for the thread-split policy.
    pub fn threads_per_job(mut self, threads: usize) -> Self {
        self.threads_per_job = threads.max(1);
        self
    }

    /// Whether each worker reuses its engine across jobs via
    /// [`SyncEngine::reset_from`] (default `true`). Reused engines are
    /// bit-identical to freshly built ones under the determinism
    /// contract; `false` forces a fresh build per job — the `perf_sweep`
    /// bench's baseline, kept as a knob so any reuse suspicion can be
    /// A/B-tested in place.
    pub fn engine_reuse(mut self, reuse: bool) -> Self {
        self.reuse_engines = reuse;
        self
    }

    /// Attaches a durable result store. Each run's outcome is keyed by
    /// a fingerprint of (canonical scenario TOML, seed, warmup,
    /// rounds); verified hits are delivered without running (with
    /// [`RunOutcome::cached`] set) and computed results are written
    /// back, so an interrupted sweep restarted with the same store
    /// recomputes only the missing runs — bit-identically, since
    /// cached entries hold exactly the bytes the original run
    /// produced. Corrupt or stale entries degrade to recomputed runs;
    /// see [`Sweep::use_policy`].
    pub fn store(mut self, store: Arc<CheckpointStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// When runs may be served from the store (default
    /// [`UsePolicy::IfFresh`]: use entries that verify end to end,
    /// recompute on any miss). [`UsePolicy::Require`] turns misses
    /// into [`ConfigError::Store`] and aborts — the replay-only mode
    /// where recomputation would hide an incomplete archive.
    pub fn use_policy(mut self, policy: UsePolicy) -> Self {
        self.use_policy = policy;
        self
    }

    /// When computed results are written back (default
    /// [`CapturePolicy::IfMissing`]). Write failures abort the sweep
    /// as [`ConfigError::Store`] — a full disk must not silently
    /// produce an archive that cannot resume.
    pub fn capture_policy(mut self, policy: CapturePolicy) -> Self {
        self.capture_policy = policy;
        self
    }

    /// Warm-starts every run from round `r` of the *base* scenario:
    /// one shared prefix run per seed (cached in the store as a
    /// checkpoint entry when one is attached) is forked into every
    /// grid point via [`Checkpoint::fork_into`], so a `g`-point grid
    /// pays for its common prefix once instead of `g` times. Grid
    /// parameters take effect from round `r`; the prefix itself must
    /// be shared, which [`Sweep::run`] prechecks — the controller,
    /// colony size, task count, initial configuration, triggers,
    /// generators, and every timeline entry at or before `r` must be
    /// constant across the grid, and `r` must be a capture boundary of
    /// the base controller. With no axes this is bit-identical to a
    /// plain run of `r + warmup + rounds` rounds measured over the
    /// last `rounds`.
    pub fn from_round(mut self, round: u64) -> Self {
        self.from_round = Some(round);
        self
    }

    /// Runs the full grid × seed matrix; results in job order (grid
    /// outermost, seeds innermost).
    pub fn run(&self) -> Result<Vec<RunOutcome>, ConfigError> {
        self.run_with(|_| {})
    }

    /// Like [`Sweep::run`], streaming outcomes in completion order.
    pub fn run_with(
        &self,
        mut on_outcome: impl FnMut(&RunOutcome),
    ) -> Result<Vec<RunOutcome>, ConfigError> {
        let mut outcomes: Vec<Option<RunOutcome>> = Vec::new();
        let count = self.run_pool(|outcome| {
            on_outcome(&outcome);
            let slot = outcome.index;
            if outcomes.len() <= slot {
                outcomes.resize_with(slot + 1, || None);
            }
            outcomes[slot] = Some(outcome);
            true
        })?;
        // Structurally total: collect exactly the outcomes that were
        // delivered, so a future abort path shortens the list instead
        // of panicking on a hole.
        let collected: Vec<RunOutcome> = outcomes.into_iter().flatten().collect();
        debug_assert_eq!(count, collected.len());
        Ok(collected)
    }

    /// Streams every outcome to `on_outcome` (completion order) and
    /// drops it afterwards — the constant-memory path for huge sweeps.
    /// Returns the number of runs completed.
    pub fn for_each(&self, mut on_outcome: impl FnMut(&RunOutcome)) -> Result<usize, ConfigError> {
        self.run_pool(|outcome| {
            on_outcome(&outcome);
            true
        })
    }

    /// Streams outcomes (completion order) until `on_outcome` returns
    /// `false`, which aborts the pool: no further jobs are claimed and
    /// in-flight outcomes are discarded. Returns the number delivered.
    /// This is the cancellation point a supervised sweep hangs its
    /// stop flag on — combined with [`Sweep::store`], a sweep stopped
    /// here resumes from where it left off.
    pub fn run_while(
        &self,
        mut on_outcome: impl FnMut(&RunOutcome) -> bool,
    ) -> Result<usize, ConfigError> {
        self.run_pool(|outcome| on_outcome(&outcome))
    }

    /// Streams every outcome into `sink` without accumulating; sink IO
    /// failures surface as [`ConfigError::Io`] and **abort the sweep**
    /// — a full disk must not burn the remaining million runs.
    pub fn stream_into(&self, sink: &mut dyn RunSink) -> Result<usize, ConfigError> {
        let mut io_error: Option<std::io::Error> = None;
        let count = self.run_pool(|outcome| match sink.on_outcome(&outcome) {
            Ok(()) => true,
            Err(e) => {
                io_error = Some(e);
                false
            }
        })?;
        if io_error.is_none() {
            if let Err(e) = sink.finish() {
                io_error = Some(e);
            }
        }
        match io_error {
            Some(e) => Err(ConfigError::Io(format!("run sink: {e}"))),
            None => Ok(count),
        }
    }

    /// The shared worker pool: runs every job of the `grid × seeds`
    /// matrix, handing each outcome to `on_outcome` in completion
    /// order. Returning `false` from the callback aborts the pool: no
    /// further jobs are claimed, and in-flight outcomes are discarded.
    ///
    /// Jobs are streamed, not materialized: each worker derives job
    /// `i`'s config on demand into its own scratch (see
    /// [`Sweep::run_job`]), so peak memory is O(workers) regardless of
    /// `grid × seeds`.
    fn run_pool(
        &self,
        mut on_outcome: impl FnMut(RunOutcome) -> bool,
    ) -> Result<usize, ConfigError> {
        let lens: Vec<usize> = self.axes.iter().map(|a| a.points.len()).collect();
        let grid_points: usize = lens.iter().product();
        let total = grid_points * self.seeds.len();

        // One-pass-per-grid-point structural precheck through a single
        // scratch config: a setter may have produced an unusable
        // config; catch it here once rather than panicking inside a
        // worker.
        {
            let mut probe = self.base.clone();
            for g in 0..grid_points {
                probe.clone_from(&self.base);
                self.apply_point(g, &lens, &mut probe);
                probe.validate_structure()?;
            }
        }
        if let Some(r) = self.from_round {
            self.fork_precheck(r, &lens, grid_points)?;
        }
        if total == 0 {
            return Ok(0);
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<Result<RunOutcome, ConfigError>>();
        // Shared-prefix checkpoints by seed: the in-process half of the
        // `from_round` amortization (the durable store, when attached,
        // is the cross-process half).
        let prefixes: Mutex<BTreeMap<u64, Arc<Checkpoint>>> = Mutex::new(BTreeMap::new());
        let workers = self.threads.min(total).max(1);
        let mut delivered = 0usize;
        let mut first_error: Option<ConfigError> = None;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let lens = &lens;
                let next = &next;
                let stop = &stop;
                let prefixes = &prefixes;
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut worker = WorkerState::new(&self.base);
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return;
                        }
                        let result = self.run_job(i, lens, &mut worker, prefixes);
                        let failed = result.is_err();
                        if tx.send(result).is_err() || failed {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            // Stream results on the caller's thread as workers finish.
            let mut aborted = false;
            for result in rx {
                if aborted {
                    continue; // drain so workers' sends don't block
                }
                match result {
                    Ok(outcome) => {
                        if on_outcome(outcome) {
                            delivered += 1;
                        } else {
                            // Raise the stop flag: idle workers stop
                            // claiming; at most `workers` in-flight
                            // runs still finish.
                            stop.store(true, Ordering::Release);
                            aborted = true;
                        }
                    }
                    Err(e) => {
                        first_error = Some(e);
                        stop.store(true, Ordering::Release);
                        aborted = true;
                    }
                }
            }
        });
        match first_error {
            Some(e) => Err(e),
            None => Ok(delivered),
        }
    }

    /// Runs job `i` on a worker's local state: re-derives the scratch
    /// config when the grid point changed, overwrites the seed, checks
    /// the store, and reuses the worker's engine unless
    /// [`Sweep::engine_reuse`] turned that off.
    fn run_job(
        &self,
        i: usize,
        lens: &[usize],
        worker: &mut WorkerState,
        prefixes: &Mutex<BTreeMap<u64, Arc<Checkpoint>>>,
    ) -> Result<RunOutcome, ConfigError> {
        let g = i / self.seeds.len();
        let s = i % self.seeds.len();
        if worker.grid_point != Some(g) {
            worker.scratch.clone_from(&self.base);
            self.apply_point(g, lens, &mut worker.scratch);
            worker.params = self.point_params(g, lens);
            worker.grid_point = Some(g);
        }
        worker.scratch.seed = self.seeds[s];
        // Fingerprinting costs a TOML render, so only with a store.
        let fp = self
            .store
            .as_ref()
            .map(|_| self.outcome_fingerprint(&worker.scratch));
        if let Some(hit) = self.cached_outcome(i, fp.as_ref(), &worker.scratch, &worker.params)? {
            return Ok(hit);
        }
        if !self.reuse_engines {
            worker.engine = None; // drop before building, like the old per-job path
        }
        let outcome = match self.from_round {
            Some(r) => self.run_forked(i, r, worker, prefixes)?,
            None => run_one(
                i,
                &worker.scratch,
                worker.params.clone(),
                self.warmup,
                self.rounds,
                self.threads_per_job,
                &mut worker.engine,
            ),
        };
        self.store_outcome(fp.as_ref(), &outcome)?;
        Ok(outcome)
    }

    /// The store key of one run: canonical scenario bytes (TOML
    /// re-emission normalizes key order), seed, and the measurement
    /// window. `from_round` folds in the fork round and the prefix
    /// scenario, since those change what the run computes;
    /// `threads`/`threads_per_job`/`engine_reuse` do not (bit-identity
    /// contract) and are deliberately excluded.
    fn outcome_fingerprint(&self, cfg: &SimConfig) -> Fingerprint {
        let mut b = FingerprintBuilder::new(OUTCOME_DOMAIN)
            .bytes("scenario", cfg.to_toml().as_bytes())
            .u64("seed", cfg.seed)
            .u64("warmup", self.warmup)
            .u64("rounds", self.rounds);
        if let Some(r) = self.from_round {
            let mut base = self.base.clone();
            base.seed = cfg.seed;
            b = b
                .u64("from-round", r)
                .bytes("prefix-scenario", base.to_toml().as_bytes());
        }
        b.finish()
    }

    /// Serves job `i` from the store if policy and entry allow.
    /// Returns `Ok(None)` on any miss under [`UsePolicy::IfFresh`]
    /// (the caller recomputes); a miss under [`UsePolicy::Require`] is
    /// an error.
    fn cached_outcome(
        &self,
        index: usize,
        fp: Option<&Fingerprint>,
        cfg: &SimConfig,
        params: &Arc<[(String, AxisValue)]>,
    ) -> Result<Option<RunOutcome>, ConfigError> {
        let require = matches!(self.use_policy, UsePolicy::Require);
        let (Some(store), Some(fp)) = (self.store.as_deref(), fp) else {
            if require {
                return Err(ConfigError::Store(
                    "UsePolicy::Require needs an attached store (Sweep::store)".into(),
                ));
            }
            return Ok(None);
        };
        if matches!(self.use_policy, UsePolicy::Never) {
            return Ok(None);
        }
        let reason = match store.load(fp, EntryKind::Outcome) {
            Ok(bytes) => match decode_outcome(&bytes) {
                Some(row) if row.seed == cfg.seed && row.rounds == self.rounds => {
                    return Ok(Some(row.into_outcome(index, params.clone())));
                }
                Some(_) => "entry disagrees with the requested seed/rounds".to_string(),
                None => "outcome payload failed to decode (layout skew)".to_string(),
            },
            Err(miss) => miss.to_string(),
        };
        if require {
            return Err(ConfigError::Store(format!(
                "required entry {} unusable: {reason}",
                fp.short_hex()
            )));
        }
        Ok(None)
    }

    /// Writes a computed outcome back per [`CapturePolicy`].
    fn store_outcome(
        &self,
        fp: Option<&Fingerprint>,
        outcome: &RunOutcome,
    ) -> Result<(), ConfigError> {
        let (Some(store), Some(fp)) = (self.store.as_deref(), fp) else {
            return Ok(());
        };
        match self.capture_policy {
            CapturePolicy::Never => return Ok(()),
            CapturePolicy::Always => {}
            CapturePolicy::IfMissing => {
                // Reaching here after a consulted store means the entry
                // already failed verification; only `UsePolicy::Never`
                // left it unprobed.
                if matches!(self.use_policy, UsePolicy::Never)
                    && store.probe(fp, EntryKind::Outcome).is_ok()
                {
                    return Ok(());
                }
            }
        }
        store
            .save(fp, EntryKind::Outcome, &encode_outcome(outcome))
            .map_err(|e| ConfigError::Store(format!("writing outcome entry: {e}")))
    }

    /// Validates a [`Sweep::from_round`] warm start: round `r` state
    /// under the base scenario must be a faithful prefix of every grid
    /// point's uninterrupted run, and `r` must be capturable.
    fn fork_precheck(&self, r: u64, lens: &[usize], grid_points: usize) -> Result<(), ConfigError> {
        let k = self.base.demands.len();
        let phase = self.base.controller.capture_phase_len(k);
        if !r.is_multiple_of(phase) {
            return Err(ConfigError::Fork(format!(
                "from_round({r}) is not a capture boundary of the base controller \
                 (capture phase {phase})"
            )));
        }
        let mut probe = self.base.clone();
        for g in 0..grid_points {
            probe.clone_from(&self.base);
            self.apply_point(g, lens, &mut probe);
            let fail = |what: &str| {
                Err(ConfigError::Fork(format!(
                    "grid point {g}: {what} — the shared prefix through round {r} must be \
                     identical across the grid (sweep it without from_round instead)"
                )))
            };
            if probe.controller != self.base.controller {
                return fail("the controller axis changes the prefix");
            }
            if probe.n != self.base.n {
                return fail("the colony size changes the prefix");
            }
            if probe.demands.len() != k {
                return fail("the task count changes the prefix");
            }
            if probe.initial != self.base.initial {
                return fail("the initial configuration changes the prefix");
            }
            if let Some(why) = self.base.timeline.prefix_divergence(&probe.timeline, r) {
                return fail(&why);
            }
            if !probe.timeline.generators.is_empty() && probe.demands != self.base.demands {
                return fail(
                    "swept demands with generators (generated magnitudes scale off demands)",
                );
            }
        }
        Ok(())
    }

    /// Runs job `i` by forking the shared prefix at round `r` into the
    /// job's config — the compute path of [`Sweep::from_round`].
    fn run_forked(
        &self,
        index: usize,
        r: u64,
        worker: &mut WorkerState,
        prefixes: &Mutex<BTreeMap<u64, Arc<Checkpoint>>>,
    ) -> Result<RunOutcome, ConfigError> {
        let seed = worker.scratch.seed;
        let memo = prefixes.lock().get(&seed).cloned();
        let ckpt = match memo {
            Some(c) => c,
            None => {
                // Workers racing on the same fresh seed duplicate the
                // prefix run; both compute identical checkpoints, so
                // last-insert-wins is benign.
                let c = self.prefix_checkpoint(seed, r, &mut worker.engine)?;
                prefixes.lock().insert(seed, c.clone());
                c
            }
        };
        let mut engine = match worker.engine.take() {
            Some(e) => e,
            None => worker.scratch.build(),
        };
        ckpt.fork_into(&worker.scratch, &mut engine);
        let (summary, final_regret, final_loads) =
            measure(&mut engine, self.warmup, self.rounds, self.threads_per_job);
        worker.engine = Some(engine);
        Ok(RunOutcome {
            index,
            seed,
            params: worker.params.clone(),
            rounds: self.rounds,
            summary,
            final_regret,
            final_loads,
            cached: false,
        })
    }

    /// The shared prefix state for `seed`: loaded from the store when
    /// a verified checkpoint entry exists, else computed by running
    /// the base scenario `r` rounds and captured back per policy.
    fn prefix_checkpoint(
        &self,
        seed: u64,
        r: u64,
        engine_slot: &mut Option<SyncEngine>,
    ) -> Result<Arc<Checkpoint>, ConfigError> {
        let mut base = self.base.clone();
        base.seed = seed;
        let fp = self.store.as_ref().map(|_| {
            FingerprintBuilder::new(PREFIX_DOMAIN)
                .bytes("scenario", base.to_toml().as_bytes())
                .u64("seed", seed)
                .u64("round", r)
                .finish()
        });
        let mut known_missing = false;
        if let (Some(store), Some(fp)) = (self.store.as_deref(), fp.as_ref()) {
            if !matches!(self.use_policy, UsePolicy::Never) {
                known_missing = true;
                if let Ok(bytes) = store.load(fp, EntryKind::Checkpoint) {
                    // The checkpoint stream is self-validating; any
                    // residual shape skew degrades to recomputation.
                    if let Ok(ckpt) = Checkpoint::from_bytes(&bytes) {
                        if ckpt.round() == r && ckpt.config() == &base {
                            return Ok(Arc::new(ckpt));
                        }
                    }
                }
            }
        }
        let mut engine = match engine_slot.take() {
            Some(mut e) => {
                e.reset_from(&base);
                e
            }
            None => base.build(),
        };
        let mut sink = NullObserver;
        if self.threads_per_job > 1 {
            engine.run_parallel(r, self.threads_per_job, &mut sink);
        } else {
            engine.run(r, &mut sink);
        }
        let ckpt = Checkpoint::capture(&engine).map_err(|e| {
            ConfigError::Fork(format!("capturing the shared prefix at round {r}: {e}"))
        })?;
        *engine_slot = Some(engine);
        if let (Some(store), Some(fp)) = (self.store.as_deref(), fp.as_ref()) {
            let write = match self.capture_policy {
                CapturePolicy::Never => false,
                CapturePolicy::Always => true,
                CapturePolicy::IfMissing => {
                    known_missing || store.probe(fp, EntryKind::Checkpoint).is_err()
                }
            };
            if write {
                store
                    .save(fp, EntryKind::Checkpoint, &ckpt.to_bytes())
                    .map_err(|e| {
                        ConfigError::Store(format!("writing prefix checkpoint entry: {e}"))
                    })?;
            }
        }
        Ok(Arc::new(ckpt))
    }

    /// Applies grid point `g`'s setters to `cfg` (first axis
    /// outermost, matching the job order `run` documents).
    fn apply_point(&self, g: usize, lens: &[usize], cfg: &mut SimConfig) {
        for (a, axis) in self.axes.iter().enumerate() {
            let (_, setter) = &axis.points[point_index(lens, a, g)];
            setter(cfg);
        }
    }

    /// The shared `(axis name, value)` labels of grid point `g`.
    fn point_params(&self, g: usize, lens: &[usize]) -> Arc<[(String, AxisValue)]> {
        let params: Vec<(String, AxisValue)> = self
            .axes
            .iter()
            .enumerate()
            .map(|(a, axis)| {
                let (label, _) = &axis.points[point_index(lens, a, g)];
                (axis.name.clone(), label.clone())
            })
            .collect();
        Arc::from(params)
    }
}

/// The point index of axis `a` at grid point `g`: the first axis is
/// the outermost loop of the flattened grid.
fn point_index(lens: &[usize], a: usize, g: usize) -> usize {
    let stride: usize = lens[a + 1..].iter().product();
    (g / stride) % lens[a]
}

/// One worker's job-streaming state: a scratch config re-derived per
/// grid point, the grid point's shared params, and the engine reused
/// across jobs.
struct WorkerState {
    scratch: SimConfig,
    grid_point: Option<usize>,
    params: Arc<[(String, AxisValue)]>,
    engine: Option<SyncEngine>,
}

impl WorkerState {
    fn new(base: &SimConfig) -> Self {
        Self {
            scratch: base.clone(),
            grid_point: None,
            params: Arc::from(Vec::new()),
            engine: None,
        }
    }
}

fn run_one(
    index: usize,
    config: &SimConfig,
    params: Arc<[(String, AxisValue)]>,
    warmup: u64,
    rounds: u64,
    threads_per_job: usize,
    engine_slot: &mut Option<SyncEngine>,
) -> RunOutcome {
    // Reuse the worker's engine when one is parked in the slot —
    // `reset_from` is bit-identical to a fresh build — else build one.
    let mut engine = match engine_slot.take() {
        Some(mut engine) => {
            engine.reset_from(config);
            engine
        }
        None => config.build(),
    };
    let (summary, final_regret, final_loads) =
        measure(&mut engine, warmup, rounds, threads_per_job);
    let outcome = RunOutcome {
        index,
        seed: config.seed,
        params,
        rounds,
        final_regret,
        final_loads,
        summary,
        cached: false,
    };
    *engine_slot = Some(engine);
    outcome
}

/// Warmup + measured window on an already-positioned engine. Serial by
/// default — and bit-identical when a job parallelizes internally,
/// because the engine's parallel path guarantees it.
fn measure(
    engine: &mut SyncEngine,
    warmup: u64,
    rounds: u64,
    threads_per_job: usize,
) -> (RunSummary, u64, Vec<u64>) {
    let mut sink = NullObserver;
    let mut summary = RunSummary::new();
    if threads_per_job > 1 {
        engine.run_parallel(warmup, threads_per_job, &mut sink);
        engine.run_parallel(rounds, threads_per_job, &mut summary);
    } else {
        engine.run(warmup, &mut sink);
        engine.run(rounds, &mut summary);
    }
    let colony = engine.colony();
    let final_loads = (0..colony.num_tasks()).map(|j| colony.load(j)).collect();
    (summary, colony.instant_regret(), final_loads)
}

/// One decoded outcome entry, before the live sweep re-attaches its
/// positional `index` and shared `params`.
struct OutcomeRow {
    seed: u64,
    rounds: u64,
    summary: RunSummary,
    final_regret: u64,
    final_loads: Vec<u64>,
}

impl OutcomeRow {
    fn into_outcome(self, index: usize, params: Arc<[(String, AxisValue)]>) -> RunOutcome {
        RunOutcome {
            index,
            seed: self.seed,
            params,
            rounds: self.rounds,
            summary: self.summary,
            final_regret: self.final_regret,
            final_loads: self.final_loads,
            cached: true,
        }
    }
}

/// Outcome payload: every measured field, little-endian, in a fixed
/// order — `seed`, `rounds`, the summary's three counters, the final
/// regret, then the length-prefixed final loads. The store's manifest
/// already guards integrity (length + SHA-256), so decode failures
/// here mean layout skew and degrade to recomputation.
fn encode_outcome(o: &RunOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 8 * o.final_loads.len());
    out.extend_from_slice(&o.seed.to_le_bytes());
    out.extend_from_slice(&o.rounds.to_le_bytes());
    out.extend_from_slice(&o.summary.rounds().to_le_bytes());
    out.extend_from_slice(&o.summary.total_regret().to_le_bytes());
    out.extend_from_slice(&o.summary.max_instant_regret().to_le_bytes());
    out.extend_from_slice(&o.final_regret.to_le_bytes());
    out.extend_from_slice(&(o.final_loads.len() as u64).to_le_bytes());
    for &load in &o.final_loads {
        out.extend_from_slice(&load.to_le_bytes());
    }
    out
}

fn decode_outcome(bytes: &[u8]) -> Option<OutcomeRow> {
    let mut cur = bytes;
    let mut u64_field = || -> Option<u64> {
        let (head, tail) = cur.split_first_chunk::<8>()?;
        cur = tail;
        Some(u64::from_le_bytes(*head))
    };
    let seed = u64_field()?;
    let rounds = u64_field()?;
    let summary_rounds = u64_field()?;
    let (total, tail) = cur.split_first_chunk::<16>()?;
    let total_regret = u128::from_le_bytes(*total);
    cur = tail;
    let mut u64_field = || -> Option<u64> {
        let (head, tail) = cur.split_first_chunk::<8>()?;
        cur = tail;
        Some(u64::from_le_bytes(*head))
    };
    let max_instant_regret = u64_field()?;
    let final_regret = u64_field()?;
    let count = u64_field()?;
    // Hostile-length guard: the remaining bytes bound the load count.
    if count != (cur.len() / 8) as u64 {
        return None;
    }
    let final_loads: Vec<u64> = cur
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
        .collect();
    if !cur.chunks_exact(8).remainder().is_empty() {
        return None;
    }
    Some(OutcomeRow {
        seed,
        rounds,
        summary: RunSummary::from_parts(summary_rounds, total_regret, max_instant_regret),
        final_regret,
        final_loads,
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerSpec;
    use antalloc_core::AntParams;
    use antalloc_noise::NoiseModel;

    fn base() -> SimConfig {
        SimConfig::builder(300, vec![40, 60])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_matches_individual_serial_runs() {
        let outcomes = Batch::new(base(), 120)
            .seeds(0..8)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 8);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.seed, i as u64);
            let mut config = base();
            config.seed = outcome.seed;
            let mut engine = config.build();
            let mut summary = RunSummary::new();
            engine.run(120, &mut summary);
            assert_eq!(outcome.summary.total_regret(), summary.total_regret());
            assert_eq!(outcome.final_regret, engine.colony().instant_regret());
            let loads: Vec<u64> = (0..2).map(|j| engine.colony().load(j)).collect();
            assert_eq!(outcome.final_loads, loads);
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let one = Batch::new(base(), 80).seeds(0..6).threads(1).run().unwrap();
        let many = Batch::new(base(), 80).seeds(0..6).threads(8).run().unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.summary.total_regret(), b.summary.total_regret());
            assert_eq!(a.final_loads, b.final_loads);
        }
    }

    #[test]
    fn sweep_covers_the_full_grid_in_order() {
        let outcomes = Sweep::new(base())
            .axis("gamma", [0.03125, 0.0625], |cfg, g| {
                cfg.controller = ControllerSpec::Ant(AntParams::new(g));
            })
            .axis("lambda", [1.0, 2.0, 4.0], |cfg, lambda| {
                cfg.noise = NoiseModel::Sigmoid { lambda };
            })
            .seeds([7, 8])
            .rounds(40)
            .threads(3)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 2 * 3 * 2);
        // Job order: gamma outermost, then lambda, then seeds.
        assert_eq!(
            &outcomes[0].params[..],
            &[
                ("gamma".into(), AxisValue::Float(0.03125)),
                ("lambda".into(), AxisValue::Float(1.0))
            ]
        );
        assert_eq!(outcomes[0].seed, 7);
        assert_eq!(outcomes[1].seed, 8);
        assert_eq!(
            &outcomes[5].params[..],
            &[
                ("gamma".into(), AxisValue::Float(0.03125)),
                ("lambda".into(), AxisValue::Float(4.0))
            ]
        );
        assert_eq!(
            &outcomes[11].params[..],
            &[
                ("gamma".into(), AxisValue::Float(0.0625)),
                ("lambda".into(), AxisValue::Float(4.0))
            ]
        );
        for o in &outcomes {
            assert_eq!(o.rounds, 40);
            assert!(o.summary.rounds() == 40);
        }
    }

    #[test]
    fn labeled_axes_sweep_controller_kinds_and_timelines() {
        use antalloc_env::{Event, Timeline};

        // Controller *kinds* and whole timelines as grid dimensions —
        // the non-f64 axes the old setter signature could not express.
        let outcomes = Sweep::new(base())
            .axis_labeled(
                "controller",
                [
                    ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                    ("greedy", ControllerSpec::ExactGreedy(Default::default())),
                ],
                |cfg, spec| cfg.controller = spec.clone(),
            )
            .axis_labeled(
                "shock",
                [
                    ("none", Timeline::new()),
                    (
                        "kill-a-third",
                        Timeline::new().at(10, Event::Kill { count: 100 }),
                    ),
                ],
                |cfg, timeline| cfg.timeline = timeline.clone(),
            )
            .seeds([1])
            .rounds(30)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(
            &outcomes[0].params[..],
            &[
                ("controller".into(), AxisValue::Text("ant".into())),
                ("shock".into(), AxisValue::Text("none".into()))
            ]
        );
        assert_eq!(
            &outcomes[3].params[..],
            &[
                ("controller".into(), AxisValue::Text("greedy".into())),
                ("shock".into(), AxisValue::Text("kill-a-third".into()))
            ]
        );
        // The timeline axis really applied: the kill shrank the colony.
        let total = |o: &RunOutcome| o.final_loads.iter().sum::<u64>();
        assert!(total(&outcomes[1]) <= total(&outcomes[0]));
    }

    #[test]
    fn product_crosses_labels_and_values() {
        let points = Sweep::product(
            [("a", 1u32), ("b", 2)],
            [("x", 10u32), ("y", 20), ("z", 30)],
        );
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].0, AxisValue::Text("a×x".into()));
        assert_eq!(points[0].1, (1, 10));
        assert_eq!(points[5].0, AxisValue::Text("b×z".into()));
        assert_eq!(points[5].1, (2, 30));
        // Order: the first list is the outer loop.
        assert_eq!(points[3].0, AxisValue::Text("b×x".into()));
    }

    #[test]
    fn product_axis_runs_the_full_grid() {
        let outcomes = Sweep::new(base())
            .axis_labeled(
                "controller×gamma",
                Sweep::product([("ant", ())], [("slow", 1.0 / 32.0), ("fast", 1.0 / 16.0)]),
                |cfg, (_, gamma)| {
                    cfg.controller = ControllerSpec::Ant(AntParams::new(*gamma));
                },
            )
            .seeds([1, 2])
            .rounds(20)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(
            &outcomes[0].params[..],
            &[(
                "controller×gamma".into(),
                AxisValue::Text("ant×slow".into())
            )]
        );
    }

    #[test]
    fn sweep_rejects_configs_broken_by_setters() {
        let err = Sweep::new(base())
            .axis("demand", [0.0], |cfg, d| {
                cfg.demands = vec![d as u64];
            })
            .rounds(10)
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ZeroDemand { .. }), "{err:?}");
    }

    #[test]
    fn run_with_streams_every_outcome() {
        let mut streamed = 0usize;
        let outcomes = Batch::new(base(), 30)
            .seeds(0..5)
            .threads(2)
            .run_with(|_o| streamed += 1)
            .unwrap();
        assert_eq!(streamed, 5);
        assert_eq!(outcomes.len(), 5);
    }

    #[test]
    fn for_each_streams_without_accumulating() {
        let mut seen = Vec::new();
        let count = Batch::new(base(), 25)
            .seeds(0..6)
            .threads(3)
            .for_each(|o| seen.push(o.seed))
            .unwrap();
        assert_eq!(count, 6);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn stream_into_writes_one_row_per_run() {
        use crate::scenario::sink::CsvSink;
        let mut sink = CsvSink::new(Vec::new());
        let count = Batch::new(base(), 20)
            .seeds(0..4)
            .threads(2)
            .stream_into(&mut sink)
            .unwrap();
        assert_eq!(count, 4);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 5, "header + 4 rows:\n{text}");
        assert!(text.starts_with("index,seed,"));
    }

    #[test]
    fn failing_sink_aborts_the_sweep_with_io_error() {
        struct FailingSink {
            rows: usize,
        }
        impl crate::scenario::sink::RunSink for FailingSink {
            fn on_outcome(&mut self, _o: &RunOutcome) -> std::io::Result<()> {
                self.rows += 1;
                if self.rows >= 2 {
                    Err(std::io::Error::other("disk full"))
                } else {
                    Ok(())
                }
            }
        }
        let mut sink = FailingSink { rows: 0 };
        let err = Batch::new(base(), 10)
            .seeds(0..64)
            .threads(2)
            .stream_into(&mut sink)
            .unwrap_err();
        assert!(matches!(err, ConfigError::Io(_)), "{err:?}");
        // The pool aborted: nowhere near all 64 outcomes were offered.
        assert!(sink.rows < 64, "sink saw {} rows", sink.rows);
    }

    fn same_outcome(a: &RunOutcome, b: &RunOutcome) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.summary.rounds(), b.summary.rounds());
        assert_eq!(a.summary.total_regret(), b.summary.total_regret());
        assert_eq!(
            a.summary.max_instant_regret(),
            b.summary.max_instant_regret()
        );
        assert_eq!(a.final_regret, b.final_regret);
        assert_eq!(a.final_loads, b.final_loads);
    }

    #[test]
    fn outcome_codec_roundtrips() {
        let o = RunOutcome {
            index: 3,
            seed: 0xDEAD,
            params: Arc::from(Vec::new()),
            rounds: 40,
            summary: RunSummary::from_parts(40, 123_456_789_000, 777),
            final_regret: 42,
            final_loads: vec![10, 0, 99],
            cached: false,
        };
        let bytes = encode_outcome(&o);
        let row = decode_outcome(&bytes).unwrap();
        let back = row.into_outcome(3, o.params.clone());
        same_outcome(&o, &back);
        assert!(back.cached);
        // Truncations and trailing garbage decode to None, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_outcome(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_outcome(&long).is_none());
    }

    #[test]
    fn store_serves_second_sweep_from_cache_bit_identically() {
        let store = Arc::new(antalloc_store::CheckpointStore::in_memory());
        let sweep = || {
            Sweep::new(base())
                .axis("lambda", [1.0, 3.0], |cfg, lambda| {
                    cfg.noise = NoiseModel::Sigmoid { lambda };
                })
                .seeds(0..3)
                .rounds(40)
                .threads(2)
        };
        let cold = sweep().store(store.clone()).run().unwrap();
        assert!(cold.iter().all(|o| !o.cached), "first pass computes");
        let warm = sweep().store(store.clone()).run().unwrap();
        assert!(warm.iter().all(|o| o.cached), "second pass is all hits");
        let plain = sweep().run().unwrap();
        for ((c, w), p) in cold.iter().zip(&warm).zip(&plain) {
            same_outcome(c, w);
            same_outcome(c, p);
        }
        // Hits replay under Require; an absent entry aborts instead of
        // silently recomputing.
        let replayed = sweep()
            .store(store.clone())
            .use_policy(UsePolicy::Require)
            .run()
            .unwrap();
        assert!(replayed.iter().all(|o| o.cached));
        let err = sweep()
            .seeds(100..101)
            .store(store)
            .use_policy(UsePolicy::Require)
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Store(_)), "{err:?}");
    }

    #[test]
    fn aborted_sweep_resumes_from_store_and_recomputes_only_the_rest() {
        let store = Arc::new(antalloc_store::CheckpointStore::in_memory());
        let batch = || Batch::new(base(), 30).seeds(0..10).threads(2);
        // Kill the sweep after 4 delivered outcomes.
        let mut seen = 0;
        let delivered = batch()
            .store(store.clone())
            .run_while(|_| {
                seen += 1;
                seen < 4
            })
            .unwrap();
        assert_eq!(delivered, 3, "callback aborted on the 4th outcome");
        let captured = store.entries().unwrap().len();
        assert!(captured >= 4, "aborted runs still captured ({captured})");
        // The restart serves every captured run from the store and
        // computes only the remainder.
        let resumed = batch().store(store.clone()).run().unwrap();
        assert_eq!(resumed.len(), 10);
        assert_eq!(resumed.iter().filter(|o| o.cached).count(), captured);
        let fresh = batch().run().unwrap();
        for (r, f) in resumed.iter().zip(&fresh) {
            same_outcome(r, f);
        }
    }

    #[test]
    fn corrupt_store_entries_degrade_to_recomputed_runs() {
        use antalloc_store::CheckpointStore;
        let store = Arc::new(CheckpointStore::in_memory());
        let batch = || Batch::new(base(), 25).seeds(0..4).threads(2);
        let cold = batch().store(store.clone()).run().unwrap();
        // Bit-flip every payload in place.
        for prefix in store.entries().unwrap() {
            let path = format!("entries/{prefix}/payload");
            let mut bytes = store.backend().read(&path).unwrap().unwrap();
            bytes[0] ^= 0xFF;
            store.backend().publish(&path, &bytes).unwrap();
        }
        let recomputed = batch().store(store.clone()).run().unwrap();
        assert!(
            recomputed.iter().all(|o| !o.cached),
            "nothing served corrupt"
        );
        for (a, b) in cold.iter().zip(&recomputed) {
            same_outcome(a, b);
        }
        // The recomputation healed the store (CapturePolicy::IfMissing).
        assert!(batch().store(store).run().unwrap().iter().all(|o| o.cached));
    }

    #[test]
    fn from_round_with_no_axes_matches_a_plain_run() {
        let outcomes = Sweep::new(base())
            .seeds(0..3)
            .from_round(100)
            .warmup(10)
            .rounds(50)
            .threads(2)
            .run()
            .unwrap();
        let plain = Sweep::new(base())
            .seeds(0..3)
            .warmup(110)
            .rounds(50)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        for (a, b) in outcomes.iter().zip(&plain) {
            same_outcome(a, b);
        }
    }

    #[test]
    fn from_round_fork_equals_a_set_noise_event_at_the_fork() {
        // Warm-started grid points take their swept noise from round
        // r+1 on — exactly a SetNoise timeline event there.
        use antalloc_env::{Event, Timeline};
        let r = 80;
        let forked = Sweep::new(base())
            .axis("lambda", [1.0, 4.0], |cfg, lambda| {
                cfg.noise = NoiseModel::Sigmoid { lambda };
            })
            .seeds([5, 6])
            .from_round(r)
            .rounds(60)
            .threads(2)
            .run()
            .unwrap();
        for (point, lambda) in [(0, 1.0), (1, 4.0)] {
            for (offset, seed) in [(0, 5u64), (1, 6u64)] {
                let mut cfg = base();
                cfg.timeline =
                    Timeline::new().at(r + 1, Event::SetNoise(NoiseModel::Sigmoid { lambda }));
                let scripted = Batch::new(cfg, 60)
                    .seeds([seed])
                    .warmup(r)
                    .threads(1)
                    .run()
                    .unwrap();
                let forked_one = &forked[point * 2 + offset];
                assert_eq!(forked_one.seed, seed);
                assert_eq!(
                    forked_one.summary.total_regret(),
                    scripted[0].summary.total_regret(),
                    "lambda {lambda} seed {seed}"
                );
                assert_eq!(forked_one.final_loads, scripted[0].final_loads);
            }
        }
    }

    #[test]
    fn from_round_prefix_is_shared_through_the_store() {
        let store = Arc::new(antalloc_store::CheckpointStore::in_memory());
        let sweep = || {
            Sweep::new(base())
                .axis("lambda", [1.0, 2.0, 4.0], |cfg, lambda| {
                    cfg.noise = NoiseModel::Sigmoid { lambda };
                })
                .seeds([3])
                .from_round(60)
                .rounds(30)
                .threads(2)
        };
        let cold = sweep().store(store.clone()).run().unwrap();
        // 3 outcome entries + 1 shared prefix checkpoint for the seed.
        assert_eq!(store.entries().unwrap().len(), 4);
        // Drop the outcomes but keep the checkpoint: the restart must
        // fork the *stored* prefix into freshly recomputed runs.
        for prefix in store.entries().unwrap() {
            let path = format!("entries/{prefix}/manifest");
            let manifest = store.backend().read(&path).unwrap().unwrap();
            if manifest[8] == 1 {
                store.backend().remove(&path).unwrap();
            }
        }
        let warm = sweep().store(store.clone()).run().unwrap();
        assert!(warm.iter().all(|o| !o.cached), "outcomes recomputed");
        for (a, b) in cold.iter().zip(&warm) {
            same_outcome(a, b);
        }
        let no_store = sweep().run().unwrap();
        for (a, b) in cold.iter().zip(&no_store) {
            same_outcome(a, b);
        }
    }

    #[test]
    fn fork_precheck_rejects_prefix_divergence() {
        use antalloc_env::{Event, Timeline};
        // A controller axis changes the prefix.
        let err = Sweep::new(base())
            .axis("gamma", [0.03125, 0.0625], |cfg, g| {
                cfg.controller = ControllerSpec::Ant(AntParams::new(g));
            })
            .from_round(50)
            .rounds(10)
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Fork(_)), "{err:?}");
        // A timeline event inside the prefix differs across the grid.
        let err = Sweep::new(base())
            .axis("kill", [10.0, 20.0], |cfg, count| {
                cfg.timeline = Timeline::new().at(
                    30,
                    Event::Kill {
                        count: count as usize,
                    },
                );
            })
            .from_round(50)
            .rounds(10)
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Fork(_)), "{err:?}");
        // The same event *after* the fork is fine.
        let ok = Sweep::new(base())
            .axis("kill", [10.0, 20.0], |cfg, count| {
                cfg.timeline = Timeline::new().at(
                    70,
                    Event::Kill {
                        count: count as usize,
                    },
                );
            })
            .from_round(50)
            .rounds(30)
            .run();
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn fork_precheck_rejects_off_boundary_rounds() {
        use antalloc_core::PreciseSigmoidParams;
        // Ant controllers checkpoint at even rounds only (phase 2).
        assert_eq!(base().controller.capture_phase_len(2), 2);
        let err = Sweep::new(base())
            .from_round(3)
            .rounds(10)
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Fork(_)), "{err:?}");
        // Scratch-serialized kinds capture anywhere: any round works.
        let mut sig = base();
        sig.controller = ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.05, 0.5));
        assert!(Sweep::new(sig).from_round(7).rounds(5).run().is_ok());
    }

    #[test]
    fn threads_per_job_is_bit_identical_to_serial_jobs() {
        // A job that parallelizes internally must produce the same
        // per-seed results (the engine's parallel path guarantees it;
        // this holds the Batch wiring down).
        let serial = Batch::new(base(), 60).seeds(0..3).threads(1).run().unwrap();
        let split = Batch::new(base(), 60)
            .seeds(0..3)
            .threads(1)
            .threads_per_job(4)
            .run()
            .unwrap();
        for (a, b) in serial.iter().zip(&split) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.summary.total_regret(), b.summary.total_regret());
            assert_eq!(a.final_loads, b.final_loads);
        }
    }
}
