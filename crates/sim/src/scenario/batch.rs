//! Multi-seed batches and parameter sweeps over OS threads.
//!
//! A [`Batch`] fans one scenario out over a seed list; a [`Sweep`] adds
//! parameter axes (a full Cartesian grid). Runs execute on a pool of
//! worker threads pulling jobs from a shared queue — the same
//! fixed-thread discipline as the engine's `run_parallel` — but each
//! *run* steps serially, so every per-seed result is bit-identical to
//! running that seed alone. Results stream to the caller in completion
//! order via [`Batch::run_with`] / [`Sweep::run_with`], or arrive
//! sorted in job order from `run()`.
//!
//! ## The sweep fast path
//!
//! Jobs are never materialized: job `i` of the `grid × seeds` matrix is
//! *derived on demand* from (base config, axis setters, seed list), so
//! a million-run sweep holds O(workers) configs, not a million clones.
//! Each worker keeps one scratch [`SimConfig`] (re-derived only when
//! its grid point changes), one shared per-grid-point `params` arc, and
//! one [`SyncEngine`] reused across jobs via
//! [`SyncEngine::reset_from`] — bit-identical to building a fresh
//! engine per job, which [`Sweep::engine_reuse`] can force for A/B
//! measurement. Setter-broken configs are caught by a
//! one-pass-per-grid-point structural precheck before any worker
//! starts.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use crate::config::SimConfig;
use crate::engine::SyncEngine;
use crate::observer::{NullObserver, RunSummary};
use crate::scenario::sink::RunSink;
use crate::scenario::ConfigError;

/// One sweep-axis coordinate as recorded in a [`RunOutcome`].
///
/// Numeric axes ([`Sweep::axis`]) record the value itself; labeled
/// axes ([`Sweep::axis_labeled`] — controller kinds, timelines, mix
/// weights, anything non-numeric) record the point's label.
#[derive(Clone, Debug, PartialEq)]
pub enum AxisValue {
    /// A numeric grid point.
    Float(f64),
    /// A labeled (categorical) grid point.
    Text(String),
}

impl core::fmt::Display for AxisValue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AxisValue::Float(x) => write!(f, "{x}"),
            AxisValue::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for AxisValue {
    fn from(x: f64) -> Self {
        AxisValue::Float(x)
    }
}

impl From<String> for AxisValue {
    fn from(s: String) -> Self {
        AxisValue::Text(s)
    }
}

impl From<&str> for AxisValue {
    fn from(s: &str) -> Self {
        AxisValue::Text(s.to_string())
    }
}

/// The measured outcome of one run in a batch or sweep.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Position in the batch's job order (stable across thread counts).
    pub index: usize,
    /// The seed this run used.
    pub seed: u64,
    /// Sweep-axis values applied to the base config (empty for plain
    /// batches), as `(axis name, value)` pairs. Shared per grid point:
    /// every outcome of the same grid point holds the same arc rather
    /// than its own clone of the label vector.
    pub params: Arc<[(String, AxisValue)]>,
    /// Rounds measured (after warmup).
    pub rounds: u64,
    /// Regret summary over the measured window.
    pub summary: RunSummary,
    /// Instantaneous regret at the end of the run.
    pub final_regret: u64,
    /// Final per-task loads.
    pub final_loads: Vec<u64>,
}

/// Runs one scenario across many seeds.
#[derive(Clone)]
pub struct Batch {
    config: SimConfig,
    seeds: Vec<u64>,
    warmup: u64,
    rounds: u64,
    threads: usize,
    threads_per_job: usize,
    reuse_engines: bool,
}

impl Batch {
    /// A batch measuring `rounds` rounds per run; seeds default to the
    /// config's own seed, warmup to 0, threads to the available
    /// parallelism.
    pub fn new(config: SimConfig, rounds: u64) -> Self {
        let seed = config.seed;
        Self {
            config,
            seeds: vec![seed],
            warmup: 0,
            rounds,
            threads: default_threads(),
            threads_per_job: 1,
            reuse_engines: true,
        }
    }

    /// Replaces the seed list (e.g. `0..32`).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Unobserved rounds before measurement starts.
    pub fn warmup(mut self, rounds: u64) -> Self {
        self.warmup = rounds;
        self
    }

    /// Worker threads for the batch (runs themselves stay serial unless
    /// [`Batch::threads_per_job`] raises the per-job count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Threads each *job* may use internally via the engine's
    /// `run_parallel` (default 1: jobs step serially).
    ///
    /// **Thread-split policy.** Prefer batch-level parallelism first —
    /// independent seeds scale embarrassingly and share nothing, so
    /// `threads(t)` with serial jobs is the default and wins whenever
    /// there are at least as many jobs as cores. Raise
    /// `threads_per_job` only for huge single colonies (≫ 100k ants)
    /// where per-run latency matters or where few jobs would leave
    /// cores idle; keep `threads × threads_per_job` within the machine.
    /// Per-seed results are bit-identical either way (the engine's
    /// parallel path guarantees it), so this knob trades latency
    /// against throughput, never reproducibility.
    pub fn threads_per_job(mut self, threads: usize) -> Self {
        self.threads_per_job = threads.max(1);
        self
    }

    /// Whether workers reuse their engine across jobs (default `true`);
    /// see [`Sweep::engine_reuse`].
    pub fn engine_reuse(mut self, reuse: bool) -> Self {
        self.reuse_engines = reuse;
        self
    }

    /// Runs every seed; results are in seed-list order.
    pub fn run(&self) -> Result<Vec<RunOutcome>, ConfigError> {
        self.as_sweep().run()
    }

    /// Runs every seed, streaming each outcome (in completion order) to
    /// `on_outcome` as it lands; returns the full sorted list.
    pub fn run_with(
        &self,
        on_outcome: impl FnMut(&RunOutcome),
    ) -> Result<Vec<RunOutcome>, ConfigError> {
        self.as_sweep().run_with(on_outcome)
    }

    /// Runs every seed, streaming each outcome to `on_outcome` and
    /// **dropping it afterwards** — memory stays flat however many
    /// seeds run. Returns the number of runs completed.
    pub fn for_each(&self, on_outcome: impl FnMut(&RunOutcome)) -> Result<usize, ConfigError> {
        self.as_sweep().for_each(on_outcome)
    }

    /// Streams every outcome into `sink` (completion order) without
    /// accumulating; sink IO failures surface as [`ConfigError::Io`].
    pub fn stream_into(&self, sink: &mut dyn RunSink) -> Result<usize, ConfigError> {
        self.as_sweep().stream_into(sink)
    }

    fn as_sweep(&self) -> Sweep {
        Sweep {
            base: self.config.clone(),
            axes: Vec::new(),
            seeds: self.seeds.clone(),
            warmup: self.warmup,
            rounds: self.rounds,
            threads: self.threads,
            threads_per_job: self.threads_per_job,
            reuse_engines: self.reuse_engines,
        }
    }
}

/// A prepared grid point: the recorded coordinate plus a rewriter
/// already bound to the point's value.
type AxisPoint = (AxisValue, Arc<dyn Fn(&mut SimConfig) + Send + Sync>);

/// One sweep dimension: a named list of prepared grid points. Numeric
/// and labeled axes both lower to this, so the grid machinery never
/// cares what a point *is* — controller kinds, whole timelines and mix
/// weights sweep exactly like `f64` parameters.
struct Axis {
    name: String,
    points: Vec<AxisPoint>,
}

/// Runs a scenario over a parameter grid × seed list.
///
/// ```
/// use antalloc_sim::{Batch, SimConfig, Sweep};
///
/// let base = SimConfig::builder(400, vec![60, 80]).build().unwrap();
/// let outcomes = Sweep::new(base)
///     .axis("lambda", [1.0, 4.0], |cfg, lambda| {
///         cfg.noise = antalloc_noise::NoiseModel::Sigmoid { lambda };
///     })
///     .seeds(0..2)
///     .rounds(50)
///     .threads(2)
///     .run()
///     .unwrap();
/// assert_eq!(outcomes.len(), 4); // 2 grid points × 2 seeds
/// ```
pub struct Sweep {
    base: SimConfig,
    axes: Vec<Axis>,
    seeds: Vec<u64>,
    warmup: u64,
    rounds: u64,
    threads: usize,
    threads_per_job: usize,
    reuse_engines: bool,
}

impl Sweep {
    /// A sweep with no axes yet (equivalent to a one-seed batch of 0
    /// rounds until configured).
    pub fn new(base: SimConfig) -> Self {
        let seed = base.seed;
        Self {
            base,
            axes: Vec::new(),
            seeds: vec![seed],
            warmup: 0,
            rounds: 0,
            threads: default_threads(),
            threads_per_job: 1,
            reuse_engines: true,
        }
    }

    /// Adds a numeric grid axis: for each of `values`, `apply` rewrites
    /// the config before the run.
    pub fn axis(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = f64>,
        apply: impl Fn(&mut SimConfig, f64) + Send + Sync + 'static,
    ) -> Self {
        let apply = Arc::new(apply);
        self.axis_labeled(
            name,
            values.into_iter().map(|v| (AxisValue::Float(v), v)),
            move |cfg, &v| apply(cfg, v),
        )
    }

    /// Adds a labeled grid axis over arbitrary values: each point is a
    /// `(label, value)` pair and `apply` rewrites the config from the
    /// value. This is how non-`f64` dimensions sweep — controller
    /// *kinds*, whole timelines, mix weight vectors:
    ///
    /// ```
    /// use antalloc_core::{AntParams, ExactGreedyParams};
    /// use antalloc_sim::{ControllerSpec, SimConfig, Sweep};
    ///
    /// let base = SimConfig::builder(400, vec![60, 80]).build().unwrap();
    /// let outcomes = Sweep::new(base)
    ///     .axis_labeled(
    ///         "controller",
    ///         [
    ///             ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
    ///             ("greedy", ControllerSpec::ExactGreedy(ExactGreedyParams::default())),
    ///         ],
    ///         |cfg, spec| cfg.controller = spec.clone(),
    ///     )
    ///     .rounds(20)
    ///     .threads(2)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(outcomes.len(), 2);
    /// ```
    pub fn axis_labeled<T: Send + Sync + 'static>(
        mut self,
        name: impl Into<String>,
        points: impl IntoIterator<Item = (impl Into<AxisValue>, T)>,
        apply: impl Fn(&mut SimConfig, &T) + Send + Sync + 'static,
    ) -> Self {
        let apply = Arc::new(apply);
        self.axes.push(Axis {
            name: name.into(),
            points: points
                .into_iter()
                .map(|(label, value)| {
                    let apply = apply.clone();
                    let setter: Arc<dyn Fn(&mut SimConfig) + Send + Sync> =
                        Arc::new(move |cfg: &mut SimConfig| apply(cfg, &value));
                    (label.into(), setter)
                })
                .collect(),
        });
        self
    }

    /// Crosses two labeled point lists into the point list of a single
    /// labeled axis — the `(controller × timeline)` grids the
    /// robustness benches sweep, with one shared `a×b` label per cell
    /// instead of two separate columns.
    ///
    /// Use it when the two dimensions are *applied together* (one
    /// setter sees both values) or when downstream tooling groups by
    /// one combined key; use two [`Sweep::axis_labeled`] calls when the
    /// dimensions should stay separate outcome columns.
    ///
    /// ```
    /// use antalloc_core::{AntParams, ExactGreedyParams};
    /// use antalloc_env::{Event, Timeline};
    /// use antalloc_sim::{ControllerSpec, SimConfig, Sweep};
    ///
    /// let base = SimConfig::builder(400, vec![60, 80]).build().unwrap();
    /// let controllers = [
    ///     ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
    ///     ("greedy", ControllerSpec::ExactGreedy(ExactGreedyParams::default())),
    /// ];
    /// let shocks = [
    ///     ("calm", Timeline::new()),
    ///     ("kill", Timeline::new().at(10, Event::Kill { count: 100 })),
    /// ];
    /// let outcomes = Sweep::new(base)
    ///     .axis_labeled(
    ///         "controller×shock",
    ///         Sweep::product(controllers, shocks),
    ///         |cfg, (spec, timeline)| {
    ///             cfg.controller = spec.clone();
    ///             cfg.timeline = timeline.clone();
    ///         },
    ///     )
    ///     .rounds(20)
    ///     .threads(2)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(outcomes.len(), 4); // the full 2 × 2 grid
    /// ```
    pub fn product<A: Clone, B: Clone>(
        a: impl IntoIterator<Item = (impl Into<AxisValue>, A)>,
        b: impl IntoIterator<Item = (impl Into<AxisValue>, B)>,
    ) -> Vec<(AxisValue, (A, B))> {
        let b: Vec<(AxisValue, B)> = b
            .into_iter()
            .map(|(label, value)| (label.into(), value))
            .collect();
        let mut points = Vec::new();
        for (a_label, a_value) in a {
            let a_label = a_label.into();
            for (b_label, b_value) in &b {
                points.push((
                    AxisValue::Text(format!("{a_label}×{b_label}")),
                    (a_value.clone(), b_value.clone()),
                ));
            }
        }
        points
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Unobserved rounds before measurement.
    pub fn warmup(mut self, rounds: u64) -> Self {
        self.warmup = rounds;
        self
    }

    /// Measured rounds per run.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Worker threads (see [`Batch::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Threads each job may use internally; see
    /// [`Batch::threads_per_job`] for the thread-split policy.
    pub fn threads_per_job(mut self, threads: usize) -> Self {
        self.threads_per_job = threads.max(1);
        self
    }

    /// Whether each worker reuses its engine across jobs via
    /// [`SyncEngine::reset_from`] (default `true`). Reused engines are
    /// bit-identical to freshly built ones under the determinism
    /// contract; `false` forces a fresh build per job — the `perf_sweep`
    /// bench's baseline, kept as a knob so any reuse suspicion can be
    /// A/B-tested in place.
    pub fn engine_reuse(mut self, reuse: bool) -> Self {
        self.reuse_engines = reuse;
        self
    }

    /// Runs the full grid × seed matrix; results in job order (grid
    /// outermost, seeds innermost).
    pub fn run(&self) -> Result<Vec<RunOutcome>, ConfigError> {
        self.run_with(|_| {})
    }

    /// Like [`Sweep::run`], streaming outcomes in completion order.
    pub fn run_with(
        &self,
        mut on_outcome: impl FnMut(&RunOutcome),
    ) -> Result<Vec<RunOutcome>, ConfigError> {
        let mut outcomes: Vec<Option<RunOutcome>> = Vec::new();
        let count = self.run_pool(|outcome| {
            on_outcome(&outcome);
            let slot = outcome.index;
            if outcomes.len() <= slot {
                outcomes.resize_with(slot + 1, || None);
            }
            outcomes[slot] = Some(outcome);
            true
        })?;
        // Structurally total: collect exactly the outcomes that were
        // delivered, so a future abort path shortens the list instead
        // of panicking on a hole.
        let collected: Vec<RunOutcome> = outcomes.into_iter().flatten().collect();
        debug_assert_eq!(count, collected.len());
        Ok(collected)
    }

    /// Streams every outcome to `on_outcome` (completion order) and
    /// drops it afterwards — the constant-memory path for huge sweeps.
    /// Returns the number of runs completed.
    pub fn for_each(&self, mut on_outcome: impl FnMut(&RunOutcome)) -> Result<usize, ConfigError> {
        self.run_pool(|outcome| {
            on_outcome(&outcome);
            true
        })
    }

    /// Streams every outcome into `sink` without accumulating; sink IO
    /// failures surface as [`ConfigError::Io`] and **abort the sweep**
    /// — a full disk must not burn the remaining million runs.
    pub fn stream_into(&self, sink: &mut dyn RunSink) -> Result<usize, ConfigError> {
        let mut io_error: Option<std::io::Error> = None;
        let count = self.run_pool(|outcome| match sink.on_outcome(&outcome) {
            Ok(()) => true,
            Err(e) => {
                io_error = Some(e);
                false
            }
        })?;
        if io_error.is_none() {
            if let Err(e) = sink.finish() {
                io_error = Some(e);
            }
        }
        match io_error {
            Some(e) => Err(ConfigError::Io(format!("run sink: {e}"))),
            None => Ok(count),
        }
    }

    /// The shared worker pool: runs every job of the `grid × seeds`
    /// matrix, handing each outcome to `on_outcome` in completion
    /// order. Returning `false` from the callback aborts the pool: no
    /// further jobs are claimed, and in-flight outcomes are discarded.
    ///
    /// Jobs are streamed, not materialized: each worker derives job
    /// `i`'s config on demand into its own scratch (see
    /// [`Sweep::run_job`]), so peak memory is O(workers) regardless of
    /// `grid × seeds`.
    fn run_pool(
        &self,
        mut on_outcome: impl FnMut(RunOutcome) -> bool,
    ) -> Result<usize, ConfigError> {
        let lens: Vec<usize> = self.axes.iter().map(|a| a.points.len()).collect();
        let grid_points: usize = lens.iter().product();
        let total = grid_points * self.seeds.len();

        // One-pass-per-grid-point structural precheck through a single
        // scratch config: a setter may have produced an unusable
        // config; catch it here once rather than panicking inside a
        // worker.
        {
            let mut probe = self.base.clone();
            for g in 0..grid_points {
                probe.clone_from(&self.base);
                self.apply_point(g, &lens, &mut probe);
                probe.validate_structure()?;
            }
        }
        if total == 0 {
            return Ok(0);
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<RunOutcome>();
        let workers = self.threads.min(total).max(1);
        let mut delivered = 0usize;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let lens = &lens;
                let next = &next;
                let stop = &stop;
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut worker = WorkerState::new(&self.base);
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return;
                        }
                        let outcome = self.run_job(i, lens, &mut worker);
                        if tx.send(outcome).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            // Stream results on the caller's thread as workers finish.
            let mut aborted = false;
            for outcome in rx {
                if aborted {
                    continue; // drain so workers' sends don't block
                }
                if on_outcome(outcome) {
                    delivered += 1;
                } else {
                    // Raise the stop flag: idle workers stop claiming;
                    // at most `workers` in-flight runs still finish.
                    stop.store(true, Ordering::Release);
                    aborted = true;
                }
            }
        });
        Ok(delivered)
    }

    /// Runs job `i` on a worker's local state: re-derives the scratch
    /// config when the grid point changed, overwrites the seed, and
    /// reuses the worker's engine unless [`Sweep::engine_reuse`] turned
    /// that off.
    fn run_job(&self, i: usize, lens: &[usize], worker: &mut WorkerState) -> RunOutcome {
        let g = i / self.seeds.len();
        let s = i % self.seeds.len();
        if worker.grid_point != Some(g) {
            worker.scratch.clone_from(&self.base);
            self.apply_point(g, lens, &mut worker.scratch);
            worker.params = self.point_params(g, lens);
            worker.grid_point = Some(g);
        }
        worker.scratch.seed = self.seeds[s];
        if !self.reuse_engines {
            worker.engine = None; // drop before building, like the old per-job path
        }
        run_one(
            i,
            &worker.scratch,
            worker.params.clone(),
            self.warmup,
            self.rounds,
            self.threads_per_job,
            &mut worker.engine,
        )
    }

    /// Applies grid point `g`'s setters to `cfg` (first axis
    /// outermost, matching the job order `run` documents).
    fn apply_point(&self, g: usize, lens: &[usize], cfg: &mut SimConfig) {
        for (a, axis) in self.axes.iter().enumerate() {
            let (_, setter) = &axis.points[point_index(lens, a, g)];
            setter(cfg);
        }
    }

    /// The shared `(axis name, value)` labels of grid point `g`.
    fn point_params(&self, g: usize, lens: &[usize]) -> Arc<[(String, AxisValue)]> {
        let params: Vec<(String, AxisValue)> = self
            .axes
            .iter()
            .enumerate()
            .map(|(a, axis)| {
                let (label, _) = &axis.points[point_index(lens, a, g)];
                (axis.name.clone(), label.clone())
            })
            .collect();
        Arc::from(params)
    }
}

/// The point index of axis `a` at grid point `g`: the first axis is
/// the outermost loop of the flattened grid.
fn point_index(lens: &[usize], a: usize, g: usize) -> usize {
    let stride: usize = lens[a + 1..].iter().product();
    (g / stride) % lens[a]
}

/// One worker's job-streaming state: a scratch config re-derived per
/// grid point, the grid point's shared params, and the engine reused
/// across jobs.
struct WorkerState {
    scratch: SimConfig,
    grid_point: Option<usize>,
    params: Arc<[(String, AxisValue)]>,
    engine: Option<SyncEngine>,
}

impl WorkerState {
    fn new(base: &SimConfig) -> Self {
        Self {
            scratch: base.clone(),
            grid_point: None,
            params: Arc::from(Vec::new()),
            engine: None,
        }
    }
}

fn run_one(
    index: usize,
    config: &SimConfig,
    params: Arc<[(String, AxisValue)]>,
    warmup: u64,
    rounds: u64,
    threads_per_job: usize,
    engine_slot: &mut Option<SyncEngine>,
) -> RunOutcome {
    // Reuse the worker's engine when one is parked in the slot —
    // `reset_from` is bit-identical to a fresh build — else build one.
    let mut engine = match engine_slot.take() {
        Some(mut engine) => {
            engine.reset_from(config);
            engine
        }
        None => config.build(),
    };
    // Serial by default — and bit-identical when a job parallelizes
    // internally, because the engine's parallel path guarantees it.
    let mut sink = NullObserver;
    let mut summary = RunSummary::new();
    if threads_per_job > 1 {
        engine.run_parallel(warmup, threads_per_job, &mut sink);
        engine.run_parallel(rounds, threads_per_job, &mut summary);
    } else {
        engine.run(warmup, &mut sink);
        engine.run(rounds, &mut summary);
    }
    let colony = engine.colony();
    let outcome = RunOutcome {
        index,
        seed: config.seed,
        params,
        rounds,
        final_regret: colony.instant_regret(),
        final_loads: (0..colony.num_tasks()).map(|j| colony.load(j)).collect(),
        summary,
    };
    *engine_slot = Some(engine);
    outcome
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerSpec;
    use antalloc_core::AntParams;
    use antalloc_noise::NoiseModel;

    fn base() -> SimConfig {
        SimConfig::builder(300, vec![40, 60])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_matches_individual_serial_runs() {
        let outcomes = Batch::new(base(), 120)
            .seeds(0..8)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 8);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.seed, i as u64);
            let mut config = base();
            config.seed = outcome.seed;
            let mut engine = config.build();
            let mut summary = RunSummary::new();
            engine.run(120, &mut summary);
            assert_eq!(outcome.summary.total_regret(), summary.total_regret());
            assert_eq!(outcome.final_regret, engine.colony().instant_regret());
            let loads: Vec<u64> = (0..2).map(|j| engine.colony().load(j)).collect();
            assert_eq!(outcome.final_loads, loads);
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let one = Batch::new(base(), 80).seeds(0..6).threads(1).run().unwrap();
        let many = Batch::new(base(), 80).seeds(0..6).threads(8).run().unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.summary.total_regret(), b.summary.total_regret());
            assert_eq!(a.final_loads, b.final_loads);
        }
    }

    #[test]
    fn sweep_covers_the_full_grid_in_order() {
        let outcomes = Sweep::new(base())
            .axis("gamma", [0.03125, 0.0625], |cfg, g| {
                cfg.controller = ControllerSpec::Ant(AntParams::new(g));
            })
            .axis("lambda", [1.0, 2.0, 4.0], |cfg, lambda| {
                cfg.noise = NoiseModel::Sigmoid { lambda };
            })
            .seeds([7, 8])
            .rounds(40)
            .threads(3)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 2 * 3 * 2);
        // Job order: gamma outermost, then lambda, then seeds.
        assert_eq!(
            &outcomes[0].params[..],
            &[
                ("gamma".into(), AxisValue::Float(0.03125)),
                ("lambda".into(), AxisValue::Float(1.0))
            ]
        );
        assert_eq!(outcomes[0].seed, 7);
        assert_eq!(outcomes[1].seed, 8);
        assert_eq!(
            &outcomes[5].params[..],
            &[
                ("gamma".into(), AxisValue::Float(0.03125)),
                ("lambda".into(), AxisValue::Float(4.0))
            ]
        );
        assert_eq!(
            &outcomes[11].params[..],
            &[
                ("gamma".into(), AxisValue::Float(0.0625)),
                ("lambda".into(), AxisValue::Float(4.0))
            ]
        );
        for o in &outcomes {
            assert_eq!(o.rounds, 40);
            assert!(o.summary.rounds() == 40);
        }
    }

    #[test]
    fn labeled_axes_sweep_controller_kinds_and_timelines() {
        use antalloc_env::{Event, Timeline};

        // Controller *kinds* and whole timelines as grid dimensions —
        // the non-f64 axes the old setter signature could not express.
        let outcomes = Sweep::new(base())
            .axis_labeled(
                "controller",
                [
                    ("ant", ControllerSpec::Ant(AntParams::new(1.0 / 16.0))),
                    ("greedy", ControllerSpec::ExactGreedy(Default::default())),
                ],
                |cfg, spec| cfg.controller = spec.clone(),
            )
            .axis_labeled(
                "shock",
                [
                    ("none", Timeline::new()),
                    (
                        "kill-a-third",
                        Timeline::new().at(10, Event::Kill { count: 100 }),
                    ),
                ],
                |cfg, timeline| cfg.timeline = timeline.clone(),
            )
            .seeds([1])
            .rounds(30)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(
            &outcomes[0].params[..],
            &[
                ("controller".into(), AxisValue::Text("ant".into())),
                ("shock".into(), AxisValue::Text("none".into()))
            ]
        );
        assert_eq!(
            &outcomes[3].params[..],
            &[
                ("controller".into(), AxisValue::Text("greedy".into())),
                ("shock".into(), AxisValue::Text("kill-a-third".into()))
            ]
        );
        // The timeline axis really applied: the kill shrank the colony.
        let total = |o: &RunOutcome| o.final_loads.iter().sum::<u64>();
        assert!(total(&outcomes[1]) <= total(&outcomes[0]));
    }

    #[test]
    fn product_crosses_labels_and_values() {
        let points = Sweep::product(
            [("a", 1u32), ("b", 2)],
            [("x", 10u32), ("y", 20), ("z", 30)],
        );
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].0, AxisValue::Text("a×x".into()));
        assert_eq!(points[0].1, (1, 10));
        assert_eq!(points[5].0, AxisValue::Text("b×z".into()));
        assert_eq!(points[5].1, (2, 30));
        // Order: the first list is the outer loop.
        assert_eq!(points[3].0, AxisValue::Text("b×x".into()));
    }

    #[test]
    fn product_axis_runs_the_full_grid() {
        let outcomes = Sweep::new(base())
            .axis_labeled(
                "controller×gamma",
                Sweep::product([("ant", ())], [("slow", 1.0 / 32.0), ("fast", 1.0 / 16.0)]),
                |cfg, (_, gamma)| {
                    cfg.controller = ControllerSpec::Ant(AntParams::new(*gamma));
                },
            )
            .seeds([1, 2])
            .rounds(20)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(
            &outcomes[0].params[..],
            &[(
                "controller×gamma".into(),
                AxisValue::Text("ant×slow".into())
            )]
        );
    }

    #[test]
    fn sweep_rejects_configs_broken_by_setters() {
        let err = Sweep::new(base())
            .axis("demand", [0.0], |cfg, d| {
                cfg.demands = vec![d as u64];
            })
            .rounds(10)
            .run()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ZeroDemand { .. }), "{err:?}");
    }

    #[test]
    fn run_with_streams_every_outcome() {
        let mut streamed = 0usize;
        let outcomes = Batch::new(base(), 30)
            .seeds(0..5)
            .threads(2)
            .run_with(|_o| streamed += 1)
            .unwrap();
        assert_eq!(streamed, 5);
        assert_eq!(outcomes.len(), 5);
    }

    #[test]
    fn for_each_streams_without_accumulating() {
        let mut seen = Vec::new();
        let count = Batch::new(base(), 25)
            .seeds(0..6)
            .threads(3)
            .for_each(|o| seen.push(o.seed))
            .unwrap();
        assert_eq!(count, 6);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn stream_into_writes_one_row_per_run() {
        use crate::scenario::sink::CsvSink;
        let mut sink = CsvSink::new(Vec::new());
        let count = Batch::new(base(), 20)
            .seeds(0..4)
            .threads(2)
            .stream_into(&mut sink)
            .unwrap();
        assert_eq!(count, 4);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 5, "header + 4 rows:\n{text}");
        assert!(text.starts_with("index,seed,"));
    }

    #[test]
    fn failing_sink_aborts_the_sweep_with_io_error() {
        struct FailingSink {
            rows: usize,
        }
        impl crate::scenario::sink::RunSink for FailingSink {
            fn on_outcome(&mut self, _o: &RunOutcome) -> std::io::Result<()> {
                self.rows += 1;
                if self.rows >= 2 {
                    Err(std::io::Error::other("disk full"))
                } else {
                    Ok(())
                }
            }
        }
        let mut sink = FailingSink { rows: 0 };
        let err = Batch::new(base(), 10)
            .seeds(0..64)
            .threads(2)
            .stream_into(&mut sink)
            .unwrap_err();
        assert!(matches!(err, ConfigError::Io(_)), "{err:?}");
        // The pool aborted: nowhere near all 64 outcomes were offered.
        assert!(sink.rows < 64, "sink saw {} rows", sink.rows);
    }

    #[test]
    fn threads_per_job_is_bit_identical_to_serial_jobs() {
        // A job that parallelizes internally must produce the same
        // per-seed results (the engine's parallel path guarantees it;
        // this holds the Batch wiring down).
        let serial = Batch::new(base(), 60).seeds(0..3).threads(1).run().unwrap();
        let split = Batch::new(base(), 60)
            .seeds(0..3)
            .threads(1)
            .threads_per_job(4)
            .run()
            .unwrap();
        for (a, b) in serial.iter().zip(&split) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.summary.total_regret(), b.summary.total_regret());
            assert_eq!(a.final_loads, b.final_loads);
        }
    }
}
