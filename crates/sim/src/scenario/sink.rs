//! Streaming per-run sinks: each seed's outcome goes to disk as it
//! completes, so million-run sweeps never accumulate in memory.
//!
//! A [`RunSink`] receives every [`RunOutcome`] in completion order
//! (pair with [`crate::Batch::stream_into`] / [`crate::Sweep::stream_into`],
//! which drop outcomes after the sink has seen them). Two formats ship:
//!
//! * [`CsvSink`] — one header (derived from the first outcome's sweep
//!   axes and task count) plus one row per run;
//! * [`JsonlSink`] — one self-describing JSON object per line, the
//!   format downstream analysis pipelines append-merge.

use std::io::{self, Write};
use std::path::Path;

use crate::scenario::batch::RunOutcome;

/// A consumer of per-run outcomes, fed in completion order.
pub trait RunSink {
    /// Consumes one run's outcome.
    fn on_outcome(&mut self, outcome: &RunOutcome) -> io::Result<()>;

    /// Flushes buffered output (call once after the last outcome).
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams outcomes as CSV rows.
///
/// Columns: `index,seed,<one column per sweep axis>,rounds,avg_regret,`
/// `total_regret,max_instant_regret,final_regret,load_0..load_{k−1}`.
/// The header is derived from the first outcome; later outcomes must
/// have the same axes and task count (a sweep guarantees this).
pub struct CsvSink<W: Write> {
    out: W,
    header_written: bool,
    axes: Vec<String>,
    num_loads: usize,
}

impl CsvSink<io::BufWriter<std::fs::File>> {
    /// Creates (or truncates) a CSV file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(Self::new(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> CsvSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self {
            out,
            header_written: false,
            axes: Vec::new(),
            num_loads: 0,
        }
    }

    /// Unwraps the underlying writer (call [`RunSink::finish`] first).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RunSink for CsvSink<W> {
    fn on_outcome(&mut self, outcome: &RunOutcome) -> io::Result<()> {
        if !self.header_written {
            self.axes = outcome
                .params
                .iter()
                .map(|(name, _)| name.clone())
                .collect();
            self.num_loads = outcome.final_loads.len();
            write!(self.out, "index,seed")?;
            for axis in &self.axes {
                write!(self.out, ",{}", axis.replace([',', '\n', '\r'], "_"))?;
            }
            write!(
                self.out,
                ",rounds,avg_regret,total_regret,max_instant_regret,final_regret"
            )?;
            for j in 0..self.num_loads {
                write!(self.out, ",load_{j}")?;
            }
            writeln!(self.out)?;
            self.header_written = true;
        }
        if outcome.params.len() != self.axes.len() || outcome.final_loads.len() != self.num_loads {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "outcome shape disagrees with the sink's header",
            ));
        }
        write!(self.out, "{},{}", outcome.index, outcome.seed)?;
        for (_, value) in outcome.params.iter() {
            // Labeled axis values may contain arbitrary text; keep the
            // row parseable.
            write!(
                self.out,
                ",{}",
                value.to_string().replace([',', '\n', '\r'], "_")
            )?;
        }
        write!(
            self.out,
            ",{},{},{},{},{}",
            outcome.rounds,
            outcome.summary.average_regret(),
            outcome.summary.total_regret(),
            outcome.summary.max_instant_regret(),
            outcome.final_regret
        )?;
        for load in &outcome.final_loads {
            write!(self.out, ",{load}")?;
        }
        writeln!(self.out)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Streams outcomes as JSON Lines: one compact object per run.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates (or truncates) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(Self::new(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Unwraps the underlying writer (call [`RunSink::finish`] first).
    pub fn into_inner(self) -> W {
        self.out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<W: Write> RunSink for JsonlSink<W> {
    fn on_outcome(&mut self, outcome: &RunOutcome) -> io::Result<()> {
        write!(
            self.out,
            "{{\"index\":{},\"seed\":{}",
            outcome.index, outcome.seed
        )?;
        if !outcome.params.is_empty() {
            write!(self.out, ",\"params\":{{")?;
            for (i, (name, value)) in outcome.params.iter().enumerate() {
                if i > 0 {
                    write!(self.out, ",")?;
                }
                match value {
                    crate::scenario::batch::AxisValue::Float(x) => {
                        write!(self.out, "\"{}\":{x}", json_escape(name))?;
                    }
                    crate::scenario::batch::AxisValue::Text(s) => {
                        write!(self.out, "\"{}\":\"{}\"", json_escape(name), json_escape(s))?;
                    }
                }
            }
            write!(self.out, "}}")?;
        }
        write!(
            self.out,
            ",\"rounds\":{},\"avg_regret\":{},\"total_regret\":{},\
             \"max_instant_regret\":{},\"final_regret\":{},\"final_loads\":[",
            outcome.rounds,
            outcome.summary.average_regret(),
            outcome.summary.total_regret(),
            outcome.summary.max_instant_regret(),
            outcome.final_regret
        )?;
        for (j, load) in outcome.final_loads.iter().enumerate() {
            if j > 0 {
                write!(self.out, ",")?;
            }
            write!(self.out, "{load}")?;
        }
        writeln!(self.out, "]}}")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RunSummary;

    fn outcome(index: usize, seed: u64) -> RunOutcome {
        RunOutcome {
            index,
            seed,
            params: vec![("lambda".into(), crate::scenario::AxisValue::Float(2.0))].into(),
            rounds: 10,
            summary: RunSummary::new(),
            final_regret: 3,
            final_loads: vec![5, 7],
            cached: false,
        }
    }

    #[test]
    fn labeled_params_serialize_in_both_formats() {
        let mut o = outcome(0, 1);
        o.params = vec![(
            "controller".into(),
            crate::scenario::AxisValue::Text("ant, desync".into()),
        )]
        .into();
        let mut csv = CsvSink::new(Vec::new());
        csv.on_outcome(&o).unwrap();
        let text = String::from_utf8(csv.out).unwrap();
        // Commas inside the label are sanitized, keeping the row shape.
        assert!(
            text.lines().nth(1).unwrap().contains("ant_ desync"),
            "{text}"
        );
        let mut jsonl = JsonlSink::new(Vec::new());
        jsonl.on_outcome(&o).unwrap();
        let text = String::from_utf8(jsonl.out).unwrap();
        assert!(
            text.contains("\"controller\":\"ant, desync\""),
            "labels must be quoted JSON strings: {text}"
        );
    }

    #[test]
    fn csv_header_and_rows() {
        let mut sink = CsvSink::new(Vec::new());
        sink.on_outcome(&outcome(0, 1)).unwrap();
        sink.on_outcome(&outcome(1, 2)).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "index,seed,lambda,rounds,avg_regret,total_regret,max_instant_regret,final_regret,load_0,load_1"
        );
        assert_eq!(lines.next().unwrap(), "0,1,2,10,0,0,0,3,5,7");
        assert_eq!(lines.count(), 1);
    }

    #[test]
    fn csv_rejects_shape_drift() {
        let mut sink = CsvSink::new(Vec::new());
        sink.on_outcome(&outcome(0, 1)).unwrap();
        let mut bad = outcome(1, 2);
        bad.final_loads.push(9);
        assert!(sink.on_outcome(&bad).is_err());
    }

    #[test]
    fn jsonl_lines_are_self_describing() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_outcome(&outcome(3, 9)).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        assert_eq!(
            text,
            "{\"index\":3,\"seed\":9,\"params\":{\"lambda\":2},\"rounds\":10,\
             \"avg_regret\":0,\"total_regret\":0,\"max_instant_regret\":0,\
             \"final_regret\":3,\"final_loads\":[5,7]}\n"
        );
    }
}
