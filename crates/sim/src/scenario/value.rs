//! A small dynamic value tree shared by the TOML and JSON codecs.
//!
//! The scenario formats are declarative trees of tables, arrays, and
//! scalars; both text formats parse into this one representation, and
//! the scenario codec reads/writes it without caring which syntax the
//! bytes were in.

use crate::scenario::ConfigError;

/// One node of a parsed scenario document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An integer (wide enough for `u64` seeds to round-trip exactly).
    Int(i128),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An insertion-ordered key→value table.
    Table(Vec<(String, Value)>),
}

impl Value {
    /// An empty table.
    pub fn table() -> Self {
        Value::Table(Vec::new())
    }

    /// Type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// Looks up `key` in a table.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts (or replaces) `key` in a table. Panics on non-tables —
    /// the codec only calls this while building tables.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let Value::Table(pairs) = self else {
            panic!("insert on {}", self.kind());
        };
        let key = key.into();
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            pairs.push((key, value));
        }
    }

    // ---- checked readers, all reporting through ConfigError ----------

    /// The value as a required table field.
    pub fn want(&self, key: &str) -> Result<&Value, ConfigError> {
        self.get(key)
            .ok_or_else(|| ConfigError::Parse(format!("missing key `{key}`")))
    }

    /// Reads this node as a `u64` (integers only; no silent float
    /// truncation).
    pub fn as_u64(&self, what: &str) -> Result<u64, ConfigError> {
        match self {
            Value::Int(i) => u64::try_from(*i)
                .map_err(|_| ConfigError::Parse(format!("{what}: {i} is out of range for u64"))),
            other => Err(ConfigError::Parse(format!(
                "{what}: expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Reads this node as an `i64` (signed — deficit thresholds may be
    /// negative).
    pub fn as_i64(&self, what: &str) -> Result<i64, ConfigError> {
        match self {
            Value::Int(i) => i64::try_from(*i)
                .map_err(|_| ConfigError::Parse(format!("{what}: {i} is out of range for i64"))),
            other => Err(ConfigError::Parse(format!(
                "{what}: expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Reads this node as a `usize`.
    pub fn as_usize(&self, what: &str) -> Result<usize, ConfigError> {
        self.as_u64(what).and_then(|v| {
            usize::try_from(v)
                .map_err(|_| ConfigError::Parse(format!("{what}: {v} is out of range for usize")))
        })
    }

    /// Reads this node as an `f64` (accepting integers, plus the
    /// string spellings `"inf"`/`"-inf"`/`"nan"` that JSON — which has
    /// no literal for them — uses for non-finite values).
    pub fn as_f64(&self, what: &str) -> Result<f64, ConfigError> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::Str(s) => match s.as_str() {
                "inf" | "+inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => Err(ConfigError::Parse(format!(
                    "{what}: expected number, found string"
                ))),
            },
            other => Err(ConfigError::Parse(format!(
                "{what}: expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// Reads this node as a bool.
    pub fn as_bool(&self, what: &str) -> Result<bool, ConfigError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ConfigError::Parse(format!(
                "{what}: expected bool, found {}",
                other.kind()
            ))),
        }
    }

    /// Reads this node as a string slice.
    pub fn as_str(&self, what: &str) -> Result<&str, ConfigError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ConfigError::Parse(format!(
                "{what}: expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// Reads this node as an array slice.
    pub fn as_array(&self, what: &str) -> Result<&[Value], ConfigError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(ConfigError::Parse(format!(
                "{what}: expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Reads this node as an array of `u64`s.
    pub fn as_u64_array(&self, what: &str) -> Result<Vec<u64>, ConfigError> {
        self.as_array(what)?
            .iter()
            .map(|v| v.as_u64(what))
            .collect()
    }
}

/// Builds `Value::Array` from `u64`s (demand vectors, thresholds).
pub fn u64_array(xs: &[u64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::Int(i128::from(x))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_insert_get_replace() {
        let mut t = Value::table();
        t.insert("a", Value::Int(1));
        t.insert("b", Value::Bool(true));
        t.insert("a", Value::Int(2));
        assert_eq!(t.get("a"), Some(&Value::Int(2)));
        assert!(t.get("b").unwrap().as_bool("b").unwrap());
        assert!(t.get("c").is_none());
        assert!(t.want("c").is_err());
    }

    #[test]
    fn checked_readers_report_kinds() {
        let v = Value::Str("x".into());
        let err = v.as_u64("n").unwrap_err();
        assert!(err.to_string().contains("expected integer"), "{err}");
        assert_eq!(Value::Int(3).as_f64("x").unwrap(), 3.0);
        assert!(Value::Int(-1).as_u64("n").is_err());
    }

    #[test]
    fn u64_seeds_roundtrip_through_int() {
        let big = u64::MAX - 5;
        let v = Value::Int(i128::from(big));
        assert_eq!(v.as_u64("seed").unwrap(), big);
    }
}
