//! A self-contained TOML subset: enough for declarative scenario files,
//! with no external dependencies.
//!
//! Supported: `[section]` / `[nested.section]` headers, `key = value`
//! pairs, bare and quoted keys, strings with the common escapes,
//! integers (sign, underscores, `0x`/`0o`/`0b`), floats (including
//! `inf`/`nan` forms), booleans, (possibly multiline) arrays, inline
//! tables, and array-of-tables headers (`[[x]]`, the natural syntax
//! for `[[timeline]]` event scripts; keys after one address its last
//! element, including through nested paths). Not supported: dotted
//! keys, datetimes, multi-line strings.

use crate::scenario::value::Value;
use crate::scenario::ConfigError;

/// Parses a TOML document into a [`Value::Table`].
///
/// Duplicate keys and duplicate `[section]` headers are errors, not
/// last-wins: a scenario file where the same parameter appears twice
/// would otherwise silently run with whichever value came last.
pub fn parse(text: &str) -> Result<Value, ConfigError> {
    let mut parser = Parser {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut root = Value::table();
    let mut path: Vec<String> = Vec::new();
    let mut seen_headers: Vec<Vec<String>> = Vec::new();
    loop {
        parser.skip_trivia();
        if parser.at_end() {
            return Ok(root);
        }
        if parser.peek() == Some('[') {
            parser.bump();
            let array_of_tables = parser.peek() == Some('[');
            if array_of_tables {
                parser.bump();
            }
            path = parser.key_path()?;
            parser.expect(']')?;
            if array_of_tables {
                parser.expect(']')?;
            }
            parser.expect_line_end()?;
            if array_of_tables {
                // Append a fresh element; subsequent keys land in it.
                push_array_element(&mut root, &path)?;
            } else if plain_header_reopens_array(&root, &path) {
                // Real TOML rejects `[x]` once `[[x]]` defined an
                // array; accepting it would silently merge the keys
                // into the last element.
                return Err(parser.error(format!(
                    "`[{}]` conflicts with an array of tables; use `[[{}]]`",
                    path.join("."),
                    path.join(".")
                )));
            } else {
                // Create the table eagerly so empty sections round-trip.
                // Headers that traverse an array address its *last*
                // element and may legitimately repeat (`[a.b]` after
                // each `[[a]]`); plain table headers may not.
                let through_array = navigate(&mut root, &path, &mut |_t| Ok(()))?;
                if !through_array {
                    if seen_headers.contains(&path) {
                        return Err(
                            parser.error(format!("duplicate section `[{}]`", path.join(".")))
                        );
                    }
                    seen_headers.push(path.clone());
                }
            }
        } else {
            let key = parser.key()?;
            parser.skip_inline_ws();
            parser.expect('=')?;
            let value = parser.value()?;
            parser.expect_line_end()?;
            let line = parser.line;
            navigate(&mut root, &path, &mut |t| {
                if t.get(&key).is_some() {
                    return Err(ConfigError::Parse(format!(
                        "line {line}: duplicate key `{key}`"
                    )));
                }
                t.insert(key.clone(), value.clone());
                Ok(())
            })?;
        }
    }
}

/// Serializes a [`Value::Table`] as TOML.
///
/// Scalars and plain arrays print inline at their table's level;
/// sub-tables become `[section]` headers and non-empty arrays of
/// tables become `[[section]]` blocks (depth-first, insertion order;
/// values inside a `[[section]]` element print inline, so the writer
/// never needs dotted element paths). Tables nested inside plain
/// arrays print as inline tables.
pub fn write(root: &Value) -> String {
    let mut out = String::new();
    let Value::Table(_) = root else {
        // Scenario documents are always tables; degrade gracefully.
        write_inline(root, &mut out);
        out.push('\n');
        return out;
    };
    write_table(root, &mut Vec::new(), &mut out);
    out
}

/// Whether a value prints as `[[section]]` blocks rather than inline.
fn is_array_of_tables(value: &Value) -> bool {
    match value {
        Value::Array(items) => {
            !items.is_empty() && items.iter().all(|v| matches!(v, Value::Table(_)))
        }
        _ => false,
    }
}

fn header(path: &[String], double: bool, out: &mut String) {
    if !out.is_empty() {
        out.push('\n');
    }
    out.push_str(if double { "[[" } else { "[" });
    out.push_str(
        &path
            .iter()
            .map(|k| key_text(k))
            .collect::<Vec<_>>()
            .join("."),
    );
    out.push_str(if double { "]]\n" } else { "]\n" });
}

fn write_table(table: &Value, path: &mut Vec<String>, out: &mut String) {
    let Value::Table(pairs) = table else {
        unreachable!()
    };
    for (key, value) in pairs {
        if !matches!(value, Value::Table(_)) && !is_array_of_tables(value) {
            out.push_str(&key_text(key));
            out.push_str(" = ");
            write_inline(value, out);
            out.push('\n');
        }
    }
    for (key, value) in pairs {
        if let Value::Table(_) = value {
            path.push(key.clone());
            header(path, false, out);
            write_table(value, path, out);
            path.pop();
        } else if is_array_of_tables(value) {
            let Value::Array(items) = value else {
                unreachable!()
            };
            path.push(key.clone());
            for item in items {
                header(path, true, out);
                let Value::Table(entries) = item else {
                    unreachable!()
                };
                // Everything inside an element prints inline — nested
                // tables as `{ .. }` — so element boundaries stay
                // unambiguous without dotted sub-headers.
                for (k, v) in entries {
                    out.push_str(&key_text(k));
                    out.push_str(" = ");
                    write_inline(v, out);
                    out.push('\n');
                }
            }
            path.pop();
        }
    }
}

fn write_inline(value: &Value, out: &mut String) {
    match value {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => out.push_str(&float_text(*x)),
        Value::Str(s) => out.push_str(&string_text(s)),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(item, out);
            }
            out.push(']');
        }
        Value::Table(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push(' ');
                out.push_str(&key_text(k));
                out.push_str(" = ");
                write_inline(v, out);
            }
            out.push_str(" }");
        }
    }
}

fn key_text(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        string_text(key)
    }
}

fn string_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{{{:x}}}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn float_text(x: f64) -> String {
    if x.is_nan() {
        "nan".to_string()
    } else if x.is_infinite() {
        if x > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else {
        // `{:?}` is the shortest representation that round-trips and
        // always contains a `.` or exponent, keeping the value a float.
        format!("{x:?}")
    }
}

/// Walks `path` from `root` (creating missing tables), descending into
/// the **last element** of any array-of-tables met on the way, and
/// applies `f` to the final table. Returns whether the walk passed
/// through an array (callers use this to relax duplicate-header rules).
fn navigate(
    root: &mut Value,
    path: &[String],
    f: &mut dyn FnMut(&mut Value) -> Result<(), ConfigError>,
) -> Result<bool, ConfigError> {
    let mut through_array = false;
    let mut node = root;
    for part in path {
        node = descend_arrays(node, part, &mut through_array)?;
        let Value::Table(pairs) = node else {
            return Err(ConfigError::Parse(format!(
                "key `{part}` is both a value and a table"
            )));
        };
        if !pairs.iter().any(|(k, _)| k == part) {
            pairs.push((part.clone(), Value::table()));
        }
        let slot = pairs
            .iter_mut()
            .find(|(k, _)| k == part)
            .map(|(_, v)| v)
            .expect("just inserted");
        if !matches!(slot, Value::Table(_) | Value::Array(_)) {
            return Err(ConfigError::Parse(format!(
                "key `{part}` is both a value and a table"
            )));
        }
        node = slot;
    }
    node = descend_arrays(node, "section", &mut through_array)?;
    if !matches!(node, Value::Table(_)) {
        return Err(ConfigError::Parse(
            "section header addresses a non-table value".into(),
        ));
    }
    f(node)?;
    Ok(through_array)
}

/// Descends into the last element of nested arrays-of-tables.
fn descend_arrays<'a>(
    mut node: &'a mut Value,
    part: &str,
    through_array: &mut bool,
) -> Result<&'a mut Value, ConfigError> {
    while let Value::Array(items) = node {
        *through_array = true;
        node = items.last_mut().ok_or_else(|| {
            ConfigError::Parse(format!("`{part}` addresses an element of an empty array"))
        })?;
    }
    Ok(node)
}

/// Whether a plain `[path]` header addresses an existing array of
/// tables — invalid TOML (the single-bracket form may not reopen an
/// `[[path]]` array). Intermediate parts still descend into last
/// elements, so `[a.b]` after `[[a]]` stays legal.
fn plain_header_reopens_array(root: &Value, path: &[String]) -> bool {
    let mut node = root;
    for (i, part) in path.iter().enumerate() {
        while let Value::Array(items) = node {
            match items.last() {
                Some(last) => node = last,
                None => return false,
            }
        }
        match node.get(part) {
            Some(slot) if i + 1 == path.len() => return matches!(slot, Value::Array(_)),
            Some(slot) => node = slot,
            None => return false,
        }
    }
    false
}

/// Handles a `[[path]]` header: appends a fresh table element to the
/// array at `path` (creating the array on first use).
fn push_array_element(root: &mut Value, path: &[String]) -> Result<(), ConfigError> {
    let (last, parent) = path.split_last().expect("key_path is non-empty");
    navigate(root, parent, &mut |table| {
        let Value::Table(pairs) = table else {
            unreachable!("navigate lands on tables")
        };
        match pairs.iter_mut().find(|(k, _)| k == last) {
            None => {
                pairs.push((last.clone(), Value::Array(vec![Value::table()])));
                Ok(())
            }
            Some((_, Value::Array(items))) => {
                items.push(Value::table());
                Ok(())
            }
            Some(_) => Err(ConfigError::Parse(format!(
                "`[[{last}]]` conflicts with an existing non-array value"
            ))),
        }
    })?;
    Ok(())
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn error(&self, msg: impl Into<String>) -> ConfigError {
        ConfigError::Parse(format!("line {}: {}", self.line, msg.into()))
    }

    /// Skips spaces/tabs on the current line.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.bump();
        }
    }

    /// Skips whitespace (including newlines) and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ' | '\t' | '\n' | '\r') => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, want: char) -> Result<(), ConfigError> {
        self.skip_inline_ws();
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.error(format!("expected `{want}`, found `{c}`"))),
            None => Err(self.error(format!("expected `{want}`, found end of input"))),
        }
    }

    /// Consumes end-of-line (allowing a trailing comment) or end of input.
    fn expect_line_end(&mut self) -> Result<(), ConfigError> {
        self.skip_inline_ws();
        if self.peek() == Some('#') {
            while !matches!(self.peek(), None | Some('\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') | Some('\r') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.error(format!("expected end of line, found `{c}`"))),
        }
    }

    fn key(&mut self) -> Result<String, ConfigError> {
        self.skip_inline_ws();
        match self.peek() {
            Some('"') => {
                let Value::Str(s) = self.string()? else {
                    unreachable!()
                };
                Ok(s)
            }
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut key = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        key.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(key)
            }
            Some(c) => Err(self.error(format!("expected key, found `{c}`"))),
            None => Err(self.error("expected key, found end of input")),
        }
    }

    fn key_path(&mut self) -> Result<Vec<String>, ConfigError> {
        let mut path = vec![self.key()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('.') {
                self.bump();
                path.push(self.key()?);
            } else {
                return Ok(path);
            }
        }
    }

    fn value(&mut self) -> Result<Value, ConfigError> {
        self.skip_inline_ws();
        match self.peek() {
            Some('"') => self.string(),
            Some('[') => self.array(),
            Some('{') => self.inline_table(),
            Some('t') | Some('f') | Some('i') | Some('n') => self.word(),
            Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("expected value, found `{c}`"))),
            None => Err(self.error("expected value, found end of input")),
        }
    }

    fn string(&mut self) -> Result<Value, ConfigError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(Value::Str(s)),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('u') => {
                        if self.bump() != Some('{') {
                            return Err(self.error("expected `{` after \\u"));
                        }
                        let mut hex = String::new();
                        loop {
                            match self.bump() {
                                Some('}') => break,
                                Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                                _ => return Err(self.error("bad \\u escape")),
                            }
                        }
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| self.error("bad \\u escape"))?;
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.error("invalid scalar value"))?,
                        );
                    }
                    Some(c) => return Err(self.error(format!("unknown escape \\{c}"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ConfigError> {
        self.bump(); // `[`
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(']') {
                self.bump();
                return Ok(Value::Array(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                Some(c) => return Err(self.error(format!("expected `,` or `]`, found `{c}`"))),
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, ConfigError> {
        self.bump(); // `{`
        let mut table = Value::table();
        self.skip_inline_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(table);
        }
        loop {
            let key = self.key()?;
            self.expect('=')?;
            let value = self.value()?;
            if table.get(&key).is_some() {
                return Err(self.error(format!("duplicate key `{key}` in inline table")));
            }
            table.insert(key, value);
            self.skip_inline_ws();
            match self.bump() {
                Some(',') => {
                    self.skip_inline_ws();
                }
                Some('}') => return Ok(table),
                Some(c) => return Err(self.error(format!("expected `,` or `}}`, found `{c}`"))),
                None => return Err(self.error("unterminated inline table")),
            }
        }
    }

    fn word(&mut self) -> Result<Value, ConfigError> {
        let mut w = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() {
                w.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match w.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            "inf" => Ok(Value::Float(f64::INFINITY)),
            "nan" => Ok(Value::Float(f64::NAN)),
            other => Err(self.error(format!("unknown literal `{other}`"))),
        }
    }

    fn number(&mut self) -> Result<Value, ConfigError> {
        let mut text = String::new();
        let negative = match self.peek() {
            Some('+') => {
                self.bump();
                false
            }
            Some('-') => {
                self.bump();
                true
            }
            _ => false,
        };
        // Named float forms after a sign.
        if self.peek() == Some('i') || self.peek() == Some('n') {
            let Value::Float(x) = self.word()? else {
                unreachable!()
            };
            return Ok(Value::Float(if negative { -x } else { x }));
        }
        // Radix prefixes.
        if self.peek() == Some('0') {
            if let Some(radix_char) = self.chars.get(self.pos + 1).copied() {
                let radix = match radix_char {
                    'x' | 'X' => Some(16),
                    'o' | 'O' => Some(8),
                    'b' | 'B' => Some(2),
                    _ => None,
                };
                if let Some(radix) = radix {
                    self.bump();
                    self.bump();
                    let mut digits = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() {
                            digits.push(c);
                            self.bump();
                        } else if c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let magnitude = i128::from_str_radix(&digits, radix)
                        .map_err(|e| self.error(format!("bad integer: {e}")))?;
                    return Ok(Value::Int(if negative { -magnitude } else { magnitude }));
                }
            }
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.bump();
                }
                '_' => {
                    self.bump();
                }
                '.' | 'e' | 'E' => {
                    is_float = true;
                    text.push(c);
                    self.bump();
                }
                '+' | '-' if text.ends_with('e') || text.ends_with('E') => {
                    text.push(c);
                    self.bump();
                }
                _ => break,
            }
        }
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|e| self.error(format!("bad float `{text}`: {e}")))?;
            Ok(Value::Float(if negative { -x } else { x }))
        } else {
            let i: i128 = text
                .parse()
                .map_err(|e| self.error(format!("bad integer `{text}`: {e}")))?;
            Ok(Value::Int(if negative { -i } else { i }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_sections_and_comments() {
        let doc = parse(
            r#"
# scenario
n = 4000
seed = 0xC0FFEE
name = "quick \"start\""
ratio = 2.5e-1
ok = true

[controller]
gamma = 0.0625
kind = "ant"

[schedule.inner]
period = 1_000
"#,
        )
        .unwrap();
        assert_eq!(doc.get("n"), Some(&Value::Int(4000)));
        assert_eq!(doc.get("seed"), Some(&Value::Int(0xC0FFEE)));
        assert_eq!(doc.get("name"), Some(&Value::Str("quick \"start\"".into())));
        assert_eq!(doc.get("ratio"), Some(&Value::Float(0.25)));
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        let ctrl = doc.get("controller").unwrap();
        assert_eq!(ctrl.get("kind"), Some(&Value::Str("ant".into())));
        let inner = doc.get("schedule").unwrap().get("inner").unwrap();
        assert_eq!(inner.get("period"), Some(&Value::Int(1000)));
    }

    #[test]
    fn parses_arrays_and_inline_tables() {
        let doc = parse(
            "steps = [\n  { at = 3, demands = [5, 5] },\n  { at = 9, demands = [6, 6] },\n]\nmixed = [1, -2.5, \"x\"]\n",
        )
        .unwrap();
        let steps = doc.get("steps").unwrap().as_array("steps").unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[1].get("at"), Some(&Value::Int(9)));
        assert_eq!(
            steps[0]
                .get("demands")
                .unwrap()
                .as_u64_array("demands")
                .unwrap(),
            vec![5, 5]
        );
        let mixed = doc.get("mixed").unwrap().as_array("mixed").unwrap();
        assert_eq!(mixed[1], Value::Float(-2.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "n = ",
            "n 4",
            "[unclosed",
            "[[unclosed]",
            "x = [1, 2",
            "s = \"oops",
            "t = { a = 1",
            "n = 1 extra",
            "e = @",
            "x = 1\n[[x]]\n",             // array-of-tables vs existing scalar
            "[x]\n[[x]]\n",               // array-of-tables vs existing table
            "[[x]]\na = 1\n[x]\nb = 2\n", // plain header reopening an array
        ] {
            let err = parse(bad).unwrap_err();
            assert!(matches!(err, ConfigError::Parse(_)), "`{bad}` gave {err:?}");
        }
    }

    #[test]
    fn parses_array_of_tables_headers() {
        let doc = parse(
            r#"
n = 10

[[timeline]]
at = 4000
kind = "set-demands"
demands = [1200, 800]

[[timeline]]
at = 6000
kind = "kill"
count = 2000

[[timeline]]
kind = "cycle"
start = 8000
period = 500
events = [ { kind = "scramble" } ]

[initial]
kind = "inverted"
"#,
        )
        .unwrap();
        let timeline = doc.get("timeline").unwrap().as_array("timeline").unwrap();
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline[0].get("at"), Some(&Value::Int(4000)));
        assert_eq!(timeline[1].get("count"), Some(&Value::Int(2000)));
        assert_eq!(
            timeline[2]
                .get("events")
                .unwrap()
                .as_array("events")
                .unwrap()[0]
                .get("kind"),
            Some(&Value::Str("scramble".into()))
        );
        // A plain section after the blocks lands back at the root.
        assert_eq!(
            doc.get("initial").unwrap().get("kind"),
            Some(&Value::Str("inverted".into()))
        );
    }

    #[test]
    fn nested_array_of_tables_and_sub_headers() {
        // `[[a.b]]` nests under `[a]`, and `[a.b.c]` addresses the last
        // element of `a.b` (repeating per element is legal).
        let doc = parse(
            "[a]\nx = 1\n\n[[a.b]]\nv = 1\n[a.b.c]\nw = 1\n\n[[a.b]]\nv = 2\n[a.b.c]\nw = 2\n",
        )
        .unwrap();
        let b = doc
            .get("a")
            .unwrap()
            .get("b")
            .unwrap()
            .as_array("b")
            .unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].get("v"), Some(&Value::Int(1)));
        assert_eq!(b[0].get("c").unwrap().get("w"), Some(&Value::Int(1)));
        assert_eq!(b[1].get("c").unwrap().get("w"), Some(&Value::Int(2)));
    }

    #[test]
    fn array_of_tables_roundtrips_through_writer() {
        let mut entry1 = Value::table();
        entry1.insert("at", Value::Int(10));
        entry1.insert("kind", Value::Str("kill".into()));
        entry1.insert("count", Value::Int(5));
        let mut noise = Value::table();
        noise.insert("kind", Value::Str("sigmoid".into()));
        noise.insert("lambda", Value::Float(2.0));
        let mut entry2 = Value::table();
        entry2.insert("at", Value::Int(20));
        entry2.insert("kind", Value::Str("set-noise".into()));
        entry2.insert("noise", noise);
        let mut doc = Value::table();
        doc.insert("n", Value::Int(100));
        doc.insert("timeline", Value::Array(vec![entry1, entry2]));
        let text = write(&doc);
        assert!(text.contains("[[timeline]]"), "{text}");
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(back, doc, "{text}");
    }

    #[test]
    fn duplicates_are_errors_not_last_wins() {
        // A repeated key or section must fail loudly: last-wins would
        // silently run whichever value came second.
        for bad in [
            "seed = 1\nseed = 2\n",
            "[controller]\ngamma = 0.1\n[controller]\ngamma = 0.2\n",
            "[a]\nx = 1\n[a]\ny = 2\n",
            "t = { a = 1, a = 2 }\n",
            "[a]\nx = 1\nx = 2\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(
                err.to_string().contains("duplicate"),
                "`{bad}` gave {err:?}"
            );
        }
        // Nested headers that merely share a prefix are fine.
        let ok = parse("[a]\nx = 1\n[a.b]\ny = 2\n").unwrap();
        assert_eq!(
            ok.get("a").unwrap().get("b").unwrap().get("y"),
            Some(&Value::Int(2))
        );
    }

    #[test]
    fn writer_output_reparses_identically() {
        let mut doc = Value::table();
        doc.insert("n", Value::Int(4000));
        doc.insert(
            "demands",
            crate::scenario::value::u64_array(&[400, 700, 300]),
        );
        doc.insert("label", Value::Str("a \"b\"\nc".into()));
        let mut sub = Value::table();
        sub.insert("gamma", Value::Float(1.0 / 16.0));
        sub.insert("big", Value::Int(i128::from(u64::MAX)));
        let mut steps = Value::table();
        steps.insert("at", Value::Int(3));
        steps.insert("demands", crate::scenario::value::u64_array(&[5, 5]));
        sub.insert("steps", Value::Array(vec![steps]));
        doc.insert("controller", sub);
        let text = write(&doc);
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(back, doc, "document drifted through write/parse:\n{text}");
    }

    #[test]
    fn float_specials_roundtrip() {
        let mut doc = Value::table();
        doc.insert("a", Value::Float(f64::INFINITY));
        doc.insert("b", Value::Float(f64::NEG_INFINITY));
        doc.insert("c", Value::Float(2.0));
        let text = write(&doc);
        let back = parse(&text).unwrap();
        assert_eq!(back.get("a"), Some(&Value::Float(f64::INFINITY)));
        assert_eq!(back.get("b"), Some(&Value::Float(f64::NEG_INFINITY)));
        assert_eq!(back.get("c"), Some(&Value::Float(2.0)));
    }
}
