//! The typed configuration error.

/// Why a scenario cannot be built (or parsed).
///
/// Construction through [`crate::ScenarioBuilder`] reports the first
/// problem found as one of these variants instead of panicking at run
/// time. The enum is `#[non_exhaustive]`: future validation passes may
/// add variants without breaking callers.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `n == 0`: a colony with no ants cannot allocate anything.
    EmptyColony,
    /// The demand vector is empty (the model has `k ≥ 1` tasks).
    NoTasks,
    /// Task `task` has demand zero (zero-demand tasks are omitted, not
    /// listed — `DemandVector` would panic on them at engine start).
    ZeroDemand {
        /// Index of the offending task.
        task: usize,
    },
    /// The task count exceeds the engine's hard cap (the step kernels'
    /// bitmask sensing carries at most [`crate::MAX_TASKS`] tasks; the
    /// paper's regime is `k ≪ n`, single digits in every experiment).
    TooManyTasks {
        /// Number of tasks the config declares.
        tasks: usize,
        /// The hard cap ([`crate::MAX_TASKS`]).
        max: usize,
    },
    /// The controller spec is outside its admissible parameter window
    /// or structurally unusable.
    Controller(String),
    /// The spatial arena disagrees with the colony: wrong
    /// `site_of_task` length, sparse site ids, or a wander probability
    /// outside `[0, 1]`.
    Arena(String),
    /// The noise model has out-of-range parameters or a policy whose
    /// shape disagrees with the task count.
    Noise(String),
    /// The event timeline is inconsistent (unsorted events, wrong
    /// demand length, kills below zero population, task index out of
    /// range, degenerate cycle or shock generator, bad noise switch).
    Timeline(String),
    /// A timeline trigger is inconsistent (degenerate condition
    /// parameters, bad event payload).
    Trigger(String),
    /// The initial configuration references a nonexistent task.
    Initial(String),
    /// A scenario file could not be parsed.
    Parse(String),
    /// A scenario file could not be read or written.
    Io(String),
    /// The durable result store failed in a way recomputation must not
    /// paper over: a required entry was missing or unusable
    /// (`UsePolicy::Require`), or a capture could not be written.
    Store(String),
    /// A sweep warm start (`Sweep::from_round`) is invalid: the grid
    /// diverges from the base scenario inside the shared prefix, so
    /// forking the prefix run would not match an uninterrupted run.
    Fork(String),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::EmptyColony => write!(f, "colony has zero ants"),
            ConfigError::NoTasks => write!(f, "demand vector is empty"),
            ConfigError::ZeroDemand { task } => {
                write!(f, "task {task} has zero demand (omit zero-demand tasks)")
            }
            ConfigError::TooManyTasks { tasks, max } => {
                write!(f, "{tasks} tasks exceeds the engine cap of {max}")
            }
            ConfigError::Controller(msg) => write!(f, "invalid controller: {msg}"),
            ConfigError::Arena(msg) => write!(f, "invalid arena: {msg}"),
            ConfigError::Noise(msg) => write!(f, "invalid noise model: {msg}"),
            ConfigError::Timeline(msg) => write!(f, "invalid timeline: {msg}"),
            ConfigError::Trigger(msg) => write!(f, "invalid trigger: {msg}"),
            ConfigError::Initial(msg) => write!(f, "invalid initial configuration: {msg}"),
            ConfigError::Parse(msg) => write!(f, "scenario parse error: {msg}"),
            ConfigError::Io(msg) => write!(f, "scenario io error: {msg}"),
            ConfigError::Store(msg) => write!(f, "result store error: {msg}"),
            ConfigError::Fork(msg) => write!(f, "invalid sweep warm start: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}
