//! Simulation configuration and controller construction.

use std::sync::Arc;

use antalloc_core::{
    AlgorithmAnt, AntBank, AntParams, AnyController, ControllerBank, ExactGreedy, ExactGreedyBank,
    ExactGreedyParams, FsmSpec, PreciseAdversarial, PreciseAdversarialParams, PreciseSigmoid,
    PreciseSigmoidBank, PreciseSigmoidParams, ProportionalBank, ProportionalController,
    ProportionalParams, TableFsm, Trivial, TrivialBank,
};
use antalloc_env::{ArenaConfig, DemandVector, InitialConfig, Timeline};
use antalloc_noise::NoiseModel;

use crate::engine::SyncEngine;
use crate::sequential::SequentialEngine;

/// Which algorithm every ant runs (plus its parameters).
///
/// A *spec* rather than a prototype instance so checkpoints can encode
/// it compactly and engines can rebuild controllers for spawned ants.
#[derive(Clone, Debug, PartialEq)]
pub enum ControllerSpec {
    /// §4 Algorithm Ant.
    Ant(AntParams),
    /// Algorithm Ant with desynchronized phases: ant `i` runs its
    /// two-round phase at offset `i mod 2`, so at any instant half the
    /// colony is first-sampling while the other half decides. This is
    /// §6's "less synchronization" open problem in its most basic form;
    /// `exp_open_desync` measures the cost.
    AntDesync(AntParams),
    /// §5 Algorithm Precise Sigmoid.
    PreciseSigmoid(PreciseSigmoidParams),
    /// Appendix C Algorithm Precise Adversarial.
    PreciseAdversarial(PreciseAdversarialParams),
    /// Appendix D trivial algorithm.
    Trivial,
    /// Exact-feedback baseline.
    ExactGreedy(ExactGreedyParams),
    /// Proportional-control rival: a gain/deadband threshold controller
    /// from the engineering-control family (join or quit with
    /// probability `gain` once a deficit signal persists past the
    /// deadband), racing the paper's algorithms under identical noise.
    Proportional(ProportionalParams),
    /// Single-task hysteresis FSM of the given depth; `lazy` makes the
    /// switching edges fire with that probability instead of 1.
    Hysteresis {
        /// Consecutive contrary signals required before switching.
        depth: u16,
        /// Optional switching probability (lazy machines).
        lazy: Option<f64>,
    },
    /// A heterogeneous colony: each ant runs one of the weighted
    /// sub-specs, racing the algorithms head-to-head *inside one
    /// colony*.
    ///
    /// Ant counts per sub-spec are exact largest-remainder quotas of the
    /// weights; which ant runs which sub-spec is a deterministic seeded
    /// shuffle (derived from the master seed via the reserved `MIX`
    /// stream), so mixed runs are as reproducible as homogeneous ones.
    /// Sub-specs may not themselves be `Mix`, weights must be positive
    /// and finite, and the list must be non-empty — all enforced by the
    /// scenario validation as typed [`crate::ConfigError`]s.
    Mix(Vec<(f64, ControllerSpec)>),
}

impl ControllerSpec {
    /// Builds one controller for a colony with `num_tasks` tasks.
    ///
    /// For `Hysteresis`, prefer [`ControllerSpec::build_bank`] which
    /// shares the transition table across the colony.
    ///
    /// # Panics
    /// For `Mix`: a heterogeneous colony has no single controller;
    /// engines build one bank per sub-spec (validation guarantees they
    /// never reach this).
    pub fn build(&self, num_tasks: usize) -> AnyController {
        match self {
            ControllerSpec::Ant(p) => AlgorithmAnt::new(num_tasks, *p).into(),
            // A lone desync build gets offset 0; build_bank staggers.
            ControllerSpec::AntDesync(p) => AlgorithmAnt::new(num_tasks, *p).into(),
            ControllerSpec::PreciseSigmoid(p) => PreciseSigmoid::new(num_tasks, *p).into(),
            ControllerSpec::PreciseAdversarial(p) => PreciseAdversarial::new(num_tasks, *p).into(),
            ControllerSpec::Trivial => Trivial::new(num_tasks).into(),
            ControllerSpec::ExactGreedy(p) => ExactGreedy::new(num_tasks, *p).into(),
            ControllerSpec::Proportional(p) => ProportionalController::new(num_tasks, *p).into(),
            ControllerSpec::Hysteresis { depth, lazy } => {
                TableFsm::new(Arc::new(Self::hysteresis_spec(*depth, *lazy))).into()
            }
            ControllerSpec::Mix(_) => panic!("Mix has no single controller; build banks"),
        }
    }

    /// Builds `n` controllers, sharing immutable structure where the
    /// variant allows it. Per-ant equivalent of [`ControllerSpec::build_bank`]
    /// over ids `0..n`; kept for reference replays and tests.
    ///
    /// # Panics
    /// For `Mix` (see [`ControllerSpec::build`]).
    pub fn build_many(&self, num_tasks: usize, n: usize) -> Vec<AnyController> {
        match self {
            ControllerSpec::Hysteresis { depth, lazy } => {
                let spec = Arc::new(Self::hysteresis_spec(*depth, *lazy));
                (0..n).map(|_| TableFsm::new(spec.clone()).into()).collect()
            }
            ControllerSpec::AntDesync(p) => (0..n)
                .map(|i| AlgorithmAnt::with_phase_offset(num_tasks, *p, (i % 2) as u64).into())
                .collect(),
            other => (0..n).map(|_| other.build(num_tasks)).collect(),
        }
    }

    /// Builds one homogeneous bank for the ants with global ids `ids`.
    ///
    /// Identical per-ant semantics to [`ControllerSpec::build_many`]:
    /// hysteresis machines share one transition table per bank, and
    /// `AntDesync` staggers phase offsets by **global** ant id (so a
    /// desynchronized sub-population stays half-and-half however the
    /// mix interleaves it).
    ///
    /// # Panics
    /// For `Mix`: banks are built per sub-spec.
    pub fn build_bank(&self, num_tasks: usize, ids: &[u32]) -> ControllerBank {
        match self {
            // Synchronized Ant colonies get the SoA fast layout.
            ControllerSpec::Ant(p) => {
                ControllerBank::AntSoA(AntBank::new(num_tasks, *p, ids.len()))
            }
            ControllerSpec::AntDesync(p) => ControllerBank::Ant(
                ids.iter()
                    .map(|&i| AlgorithmAnt::with_phase_offset(num_tasks, *p, u64::from(i % 2)))
                    .collect(),
            ),
            // The remaining synchronized kinds get their SoA fast
            // layouts too (bit-identical to the per-ant references).
            ControllerSpec::PreciseSigmoid(p) => {
                ControllerBank::PreciseSigmoid(PreciseSigmoidBank::new(num_tasks, *p, ids.len()))
            }
            ControllerSpec::PreciseAdversarial(p) => ControllerBank::PreciseAdversarial(
                ids.iter()
                    .map(|_| PreciseAdversarial::new(num_tasks, *p))
                    .collect(),
            ),
            ControllerSpec::Trivial => {
                ControllerBank::Trivial(TrivialBank::new(num_tasks, ids.len()))
            }
            ControllerSpec::ExactGreedy(p) => {
                ControllerBank::ExactGreedy(ExactGreedyBank::new(num_tasks, *p, ids.len()))
            }
            ControllerSpec::Proportional(p) => {
                ControllerBank::Proportional(ProportionalBank::new(num_tasks, *p, ids.len()))
            }
            ControllerSpec::Hysteresis { depth, lazy } => {
                let spec = Arc::new(Self::hysteresis_spec(*depth, *lazy));
                ControllerBank::Table(ids.iter().map(|_| TableFsm::new(spec.clone())).collect())
            }
            ControllerSpec::Mix(_) => panic!("Mix builds one bank per sub-spec"),
        }
    }

    /// Rebuilds `bank` in place to the state [`ControllerSpec::build_bank`]
    /// would produce for `ids`, reusing its allocations when the bank is
    /// already of the matching kind (the engine-reuse fast path for
    /// sweeps). On a kind mismatch the bank is rebuilt from scratch.
    ///
    /// # Panics
    /// For `Mix`: banks are rebuilt per sub-spec.
    pub fn rebuild_bank(&self, num_tasks: usize, ids: &[u32], bank: &mut ControllerBank) {
        match (self, &mut *bank) {
            (ControllerSpec::Ant(p), ControllerBank::AntSoA(b)) => {
                b.reinit(num_tasks, *p, ids.len());
            }
            (ControllerSpec::AntDesync(p), ControllerBank::Ant(ants)) => {
                ants.clear();
                ants.extend(
                    ids.iter()
                        .map(|&i| AlgorithmAnt::with_phase_offset(num_tasks, *p, u64::from(i % 2))),
                );
            }
            (ControllerSpec::PreciseSigmoid(p), ControllerBank::PreciseSigmoid(b)) => {
                b.reinit(num_tasks, *p, ids.len());
            }
            (ControllerSpec::PreciseAdversarial(p), ControllerBank::PreciseAdversarial(ants)) => {
                ants.clear();
                ants.extend(ids.iter().map(|_| PreciseAdversarial::new(num_tasks, *p)));
            }
            (ControllerSpec::Trivial, ControllerBank::Trivial(b)) => {
                b.reinit(num_tasks, ids.len());
            }
            (ControllerSpec::ExactGreedy(p), ControllerBank::ExactGreedy(b)) => {
                b.reinit(num_tasks, *p, ids.len());
            }
            (ControllerSpec::Proportional(p), ControllerBank::Proportional(b)) => {
                b.reinit(num_tasks, *p, ids.len());
            }
            (ControllerSpec::Hysteresis { depth, lazy }, ControllerBank::Table(machines)) => {
                let spec = Arc::new(Self::hysteresis_spec(*depth, *lazy));
                machines.clear();
                machines.extend(ids.iter().map(|_| TableFsm::new(spec.clone())));
            }
            (ControllerSpec::Mix(_), _) => panic!("Mix rebuilds one bank per sub-spec"),
            // Kind changed between jobs: fall back to a fresh build.
            (spec, slot) => *slot = spec.build_bank(num_tasks, ids),
        }
    }

    fn hysteresis_spec(depth: u16, lazy: Option<f64>) -> FsmSpec {
        match lazy {
            None => FsmSpec::hysteresis(depth),
            Some(p) => FsmSpec::lazy_hysteresis(depth, p),
        }
    }

    /// The phase length in rounds — the granularity at which checkpoints
    /// are exact and the step probabilities repeat. For `Mix` this is
    /// the least common multiple of the sub-specs' phase lengths
    /// (saturating at `u64::MAX` for pathological combinations).
    #[allow(clippy::only_used_in_recursion)] // `num_tasks` is API surface
    pub fn phase_len(&self, num_tasks: usize) -> u64 {
        match self {
            ControllerSpec::Ant(_) | ControllerSpec::AntDesync(_) => 2,
            ControllerSpec::PreciseSigmoid(p) => p.phase_len(),
            ControllerSpec::PreciseAdversarial(p) => p.phase_len(),
            ControllerSpec::Trivial
            | ControllerSpec::ExactGreedy(_)
            | ControllerSpec::Proportional(_)
            | ControllerSpec::Hysteresis { .. } => 1,
            ControllerSpec::Mix(parts) => parts
                .iter()
                .map(|(_, spec)| spec.phase_len(num_tasks))
                .fold(1u64, lcm),
        }
    }

    /// The phase granularity at which **checkpoints** can capture —
    /// like [`ControllerSpec::phase_len`], except that kinds whose
    /// mid-phase state is fully serialized as
    /// [`antalloc_core::ControllerScratch`] contribute 1: Precise
    /// Sigmoid's counters travel in the checkpoint (format v5) and
    /// Precise Adversarial's phase trackers since v6, so their
    /// `O(1/ε)`-round phases no longer restrict capture rounds.
    pub fn capture_phase_len(&self, num_tasks: usize) -> u64 {
        match self {
            ControllerSpec::PreciseSigmoid(_) | ControllerSpec::PreciseAdversarial(_) => 1,
            ControllerSpec::Mix(parts) => parts
                .iter()
                .map(|(_, spec)| spec.capture_phase_len(num_tasks))
                .fold(1u64, lcm),
            other => other.phase_len(num_tasks),
        }
    }

    /// The weighted sub-specs of a mix (`None` for homogeneous specs).
    pub fn mix_parts(&self) -> Option<&[(f64, ControllerSpec)]> {
        match self {
            ControllerSpec::Mix(parts) => Some(parts),
            _ => None,
        }
    }
}

/// Least common multiple, saturating at `u64::MAX`.
fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// Everything needed to reproduce a run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of ants `n`.
    pub n: usize,
    /// Task demands `d(j)`.
    pub demands: Vec<u64>,
    /// The feedback generator in force at round 1 (timeline `set-noise`
    /// events may switch it mid-run).
    pub noise: NoiseModel,
    /// The algorithm every ant runs.
    pub controller: ControllerSpec,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Scripted mid-run events: demand steps, population shocks,
    /// noise-regime switches (defaults to empty — a static
    /// environment). Legacy `DemandSchedule`s convert via `.into()`.
    pub timeline: Timeline,
    /// Initial configuration (defaults to all-idle).
    pub initial: InitialConfig,
    /// Optional spatial arena: tasks pinned to sites, demand sensed
    /// locally, idle ants wandering between sites (defaults to `None` —
    /// the paper's well-mixed colony). A single-site arena is
    /// bit-identical to `None`.
    pub arena: Option<ArenaConfig>,
}

impl SimConfig {
    /// Builds the synchronous engine after structural validation.
    ///
    /// # Panics
    /// If the config is structurally invalid; prefer
    /// [`SimConfig::try_build`] (or constructing through
    /// [`crate::ScenarioBuilder`], which validates up front).
    pub fn build(&self) -> SyncEngine {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Builds the synchronous engine, reporting invalid configs as
    /// [`crate::ConfigError`] instead of panicking.
    pub fn try_build(&self) -> Result<SyncEngine, crate::ConfigError> {
        self.validate_structure()?;
        let demands = DemandVector::new(self.demands.clone());
        Ok(SyncEngine::new(self.clone(), demands))
    }

    /// Builds the sequential-model engine (Appendix D.1) after the same
    /// structural validation as [`SimConfig::build`].
    ///
    /// # Panics
    /// If the config is structurally invalid; prefer
    /// [`SimConfig::try_build_sequential`].
    pub fn build_sequential(&self) -> SequentialEngine {
        self.try_build_sequential()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Builds the sequential-model engine, reporting invalid configs as
    /// [`crate::ConfigError`].
    pub fn try_build_sequential(&self) -> Result<SequentialEngine, crate::ConfigError> {
        self.validate_structure()?;
        if self.arena.is_some() {
            // The sequential model activates one ant per round against
            // live loads; there is no round-wise sensing pass to hang a
            // spatial arena on.
            return Err(crate::ConfigError::Arena(
                "the sequential model does not support spatial arenas".into(),
            ));
        }
        let demands = DemandVector::new(self.demands.clone());
        Ok(SequentialEngine::new(self.clone(), demands))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_core::Controller as _;
    use antalloc_env::Assignment;

    #[test]
    fn build_constructs_each_variant() {
        for spec in [
            ControllerSpec::Ant(AntParams::default()),
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.03, 0.5)),
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.03, 0.5)),
            ControllerSpec::Trivial,
            ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
            ControllerSpec::Proportional(ProportionalParams::default()),
        ] {
            let c = spec.build(3);
            assert_eq!(c.assignment(), Assignment::Idle, "{spec:?}");
            assert!(spec.phase_len(3) >= 1);
        }
        // Hysteresis state 0 is W_0 (working), so a fresh machine starts
        // assigned to its single task.
        let fsm = ControllerSpec::Hysteresis {
            depth: 2,
            lazy: None,
        }
        .build(1);
        assert_eq!(fsm.assignment(), Assignment::Task(0));
    }

    #[test]
    fn both_engines_reject_the_same_invalid_timeline() {
        // `build_sequential` must route through the identical validated
        // path as `build`: a timeline the sync engine rejects can never
        // silently start sequentially.
        let cfg = SimConfig {
            n: 10,
            demands: vec![4, 4],
            noise: NoiseModel::Exact,
            controller: ControllerSpec::Trivial,
            seed: 1,
            timeline: antalloc_env::DemandSchedule::Step {
                at: 3,
                demands: vec![9],
            }
            .into(),
            initial: InitialConfig::AllIdle,
            arena: None,
        };
        let sync_err = cfg.try_build().err().expect("sync engine must reject");
        let seq_err = cfg
            .try_build_sequential()
            .err()
            .expect("sequential engine must reject");
        assert_eq!(sync_err, seq_err);
        assert!(matches!(sync_err, crate::ConfigError::Timeline(_)));
    }

    #[test]
    fn build_many_shares_hysteresis_spec() {
        let spec = ControllerSpec::Hysteresis {
            depth: 3,
            lazy: Some(0.5),
        };
        let many = spec.build_many(1, 10);
        assert_eq!(many.len(), 10);
    }

    #[test]
    fn phase_lengths() {
        assert_eq!(ControllerSpec::Ant(AntParams::default()).phase_len(2), 2);
        assert_eq!(
            ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.03, 0.5)).phase_len(2),
            82
        );
        assert_eq!(ControllerSpec::Trivial.phase_len(2), 1);
        // Mix: LCM of the parts. lcm(2, 82) = 82; lcm(2, 1) = 2.
        assert_eq!(
            ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::default())),
                (
                    1.0,
                    ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.03, 0.5))
                ),
            ])
            .phase_len(2),
            82
        );
        assert_eq!(
            ControllerSpec::Mix(vec![
                (3.0, ControllerSpec::Ant(AntParams::default())),
                (1.0, ControllerSpec::Trivial),
            ])
            .phase_len(2),
            2
        );
    }

    #[test]
    fn capture_phase_lengths_drop_serialized_scratch_kinds_to_one() {
        // Precise Sigmoid's counters travel in the checkpoint, so its
        // 82-round phase no longer gates capture — alone or in a mix.
        let sigmoid = ControllerSpec::PreciseSigmoid(PreciseSigmoidParams::new(0.03, 0.5));
        assert_eq!(sigmoid.capture_phase_len(2), 1);
        assert_eq!(
            ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::default())),
                (1.0, sigmoid),
            ])
            .capture_phase_len(2),
            2,
            "lcm(ant 2, sigmoid 1)"
        );
        // Precise Adversarial gained its scratch codec in v6: capture
        // anywhere, even though its stepping phase is 5·r1 rounds.
        assert_eq!(
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(0.03, 0.5))
                .capture_phase_len(2),
            1
        );
        // Scratch-free kinds keep their stepping phase.
        assert_eq!(
            ControllerSpec::Ant(AntParams::default()).capture_phase_len(2),
            2
        );
    }
}
