//! Engine-side arena runtime: per-ant position and travel columns plus
//! the per-round sense-row construction that turns an
//! [`ArenaConfig`] into a [`SensedRound`].
//!
//! The layout is SoA like everything else in the engine: two `Vec`s in
//! global ant order (`site`, `travel`), rebuilt rows of
//! `(num_sites + 1) · k` [`TaskFeedback`] entries per round (one row
//! per site plus a trailing all-`Overload` row travelers sense), and a
//! per-ant `sense_of` row index. Masked entries are
//! [`TaskFeedback::Fixed`] and consume zero RNG draws, so an ant's
//! stream position never depends on where it stands — the bit-identity
//! contract survives untouched.
//!
//! Movement is resolved in the coordinator's exclusive window (serial:
//! right after the round commits), on the reserved `ARENA` stream keyed
//! per round, in global ant order: travel counters tick down first,
//! then every idle settled ant flips the wander coin and, on success,
//! departs for a uniformly chosen *other* site. Working ants never
//! move — an ant can only join a task whose feedback it senses, i.e. a
//! task at its own site, so "working ants stand at their task's site"
//! is an invariant maintained by construction (and re-imposed wholesale
//! by [`ArenaState::sync_to_colony`] after scrambles and restores).

use antalloc_env::{ArenaConfig, Assignment, ColonyState, TaskColumn};
use antalloc_noise::{Feedback, PreparedRound, SensedRound, TaskFeedback};
use antalloc_rng::{reserved, uniform_index, Bernoulli, StreamSeeder};

/// The sub-seeder arena wander draws derive from: a pure function of
/// the master seed, keyed per round, so movement replays bit-identically
/// on every stepping path.
pub(crate) fn arena_seeder(seed: u64) -> StreamSeeder {
    StreamSeeder::new(StreamSeeder::new(seed).stream(reserved::ARENA).next_u64())
}

/// Live spatial state for one engine: where every ant stands, how long
/// each traveler has left, and the reusable sense-row buffers.
pub(crate) struct ArenaState {
    config: ArenaConfig,
    num_sites: usize,
    /// Current (or destination, while traveling) site per ant.
    site: Vec<u32>,
    /// Rounds of transit remaining per ant; 0 = settled.
    travel: Vec<u32>,
    /// `(num_sites + 1) · k` sense rows rebuilt each round; row `s`
    /// holds task `j`'s real feedback iff `site_of_task[j] == s`, the
    /// trailing row is all-`Overload` for travelers.
    rows: Vec<TaskFeedback>,
    /// Per-ant row index into `rows`.
    sense_of: Vec<u32>,
    /// Wander randomness, keyed per round.
    seeder: StreamSeeder,
    wander: Bernoulli,
}

impl ArenaState {
    /// Builds the runtime for `n` ants, everyone settled at site
    /// `i % num_sites` (callers follow up with
    /// [`ArenaState::sync_to_colony`] once assignments exist).
    pub(crate) fn new(config: &ArenaConfig, n: usize, seed: u64) -> Self {
        let num_sites = config.num_sites();
        let mut state = Self {
            config: config.clone(),
            num_sites,
            site: Vec::new(),
            travel: Vec::new(),
            rows: Vec::new(),
            sense_of: Vec::new(),
            seeder: arena_seeder(seed),
            wander: Bernoulli::new(config.wander_probability),
        };
        state.reset(n);
        state
    }

    /// Rebuilds to the fresh-engine state for `n` ants, reusing
    /// allocations (the engine-reuse path).
    pub(crate) fn reset(&mut self, n: usize) {
        self.site.clear();
        self.travel.clear();
        for i in 0..n {
            self.site.push(Self::home_site(i, self.num_sites));
            self.travel.push(0);
        }
    }

    /// The deterministic spawn/initial site for global index `i`.
    #[inline]
    fn home_site(i: usize, num_sites: usize) -> u32 {
        // audit:allow(cast): the remainder is < num_sites, which validation bounds by the task count (≤ MAX_TASKS, far below 2^32).
        (i % num_sites.max(1)) as u32
    }

    pub(crate) fn len(&self) -> usize {
        self.site.len()
    }

    /// Whether the geometry degenerates to the shared well-mixed view
    /// (one site; sensing and wandering are skipped entirely).
    #[inline]
    pub(crate) fn is_single_site(&self) -> bool {
        self.num_sites <= 1
    }

    /// Snaps every *working* ant to its task's site (settled); idle ants
    /// keep their position and travel state. Call after anything that
    /// rewrites assignments wholesale: initial configs, scrambles,
    /// stampedes, checkpoint restore.
    pub(crate) fn sync_to_colony(&mut self, colony: &ColonyState) {
        let n = colony.num_ants();
        while self.site.len() < n {
            self.site
                .push(Self::home_site(self.site.len(), self.num_sites));
            self.travel.push(0);
        }
        self.site.truncate(n);
        self.travel.truncate(n);
        for i in 0..n {
            if let Assignment::Task(j) = colony.assignment(i) {
                // audit:allow(cast): u32 → usize widening (usize ≥ 32 bits on supported targets).
                self.site[i] = self.config.site_of(j as usize);
                self.travel[i] = 0;
            }
        }
    }

    /// Mirrors `Population::remove` (swap-remove of global slot `i`).
    pub(crate) fn remove(&mut self, i: usize) {
        self.site.swap_remove(i);
        self.travel.swap_remove(i);
    }

    /// Mirrors `Population::spawn`: the new ant lands settled at its
    /// home site (a pure function of its global index, so spawns are
    /// stepping-path independent).
    pub(crate) fn spawn(&mut self) {
        self.site
            .push(Self::home_site(self.site.len(), self.num_sites));
        self.travel.push(0);
    }

    /// Rebuilds the sense rows and per-ant row indices for the round
    /// described by `prepared`. No-op for single-site geometries — the
    /// engine hands out [`SensedRound::shared`] instead.
    pub(crate) fn build_round(&mut self, prepared: &PreparedRound) {
        if self.is_single_site() {
            return;
        }
        let k = prepared.num_tasks();
        let masked = TaskFeedback::Fixed(Feedback::Overload);
        self.rows.clear();
        self.rows.resize((self.num_sites + 1) * k, masked);
        for (j, &feedback) in prepared.tasks().iter().enumerate() {
            // audit:allow(cast): u32 → usize widening (usize ≥ 32 bits on supported targets).
            let s = self.config.site_of(j) as usize;
            self.rows[s * k + j] = feedback;
        }
        // audit:allow(cast): validation bounds num_sites by the task count (≤ MAX_TASKS, far below 2^32).
        let blind = self.num_sites as u32;
        self.sense_of.clear();
        self.sense_of.extend(
            self.site
                .iter()
                .zip(&self.travel)
                .map(|(&s, &t)| if t > 0 { blind } else { s }),
        );
    }

    /// The sensed view of this round: the shared well-mixed view for
    /// single-site geometries, per-site rows otherwise. Call after
    /// [`ArenaState::build_round`].
    pub(crate) fn sensed<'a>(&'a self, prepared: &'a PreparedRound) -> SensedRound<'a> {
        if self.is_single_site() {
            SensedRound::shared(prepared)
        } else {
            SensedRound::from_parts(
                &self.rows,
                &self.sense_of,
                prepared.num_tasks(),
                prepared.round(),
            )
        }
    }

    /// The end-of-round movement pass: travel counters tick down, then
    /// every idle settled ant flips the wander coin (reserved `ARENA`
    /// stream keyed by `round`, global ant order) and on success departs
    /// for a uniformly chosen other site. `assignments` is the
    /// just-committed authoritative column.
    pub(crate) fn wander(&mut self, round: u64, assignments: &TaskColumn) {
        if self.is_single_site() {
            return;
        }
        for t in &mut self.travel {
            *t = t.saturating_sub(1);
        }
        if self.wander.never() {
            return;
        }
        let mut rng = self.seeder.stream(round);
        for i in 0..self.site.len() {
            // audit:allow(cast): ant slot indices are < the colony size, which the u32 assignment columns already bound below 2^32.
            if self.travel[i] > 0 || assignments.load(i as u32) != Assignment::RAW_IDLE {
                continue;
            }
            if self.wander.sample(&mut rng) {
                // audit:allow(cast): the pick is < num_sites − 1, and validation bounds num_sites by the task count (≤ MAX_TASKS).
                let pick = uniform_index(&mut rng, self.num_sites - 1) as u32;
                self.site[i] = pick + u32::from(pick >= self.site[i]);
                self.travel[i] = self.config.travel_rounds;
            }
        }
    }

    /// Per-ant site column, global ant order (checkpointing).
    pub(crate) fn site(&self) -> &[u32] {
        &self.site
    }

    /// Per-ant travel column, global ant order (checkpointing).
    pub(crate) fn travel(&self) -> &[u32] {
        &self.travel
    }

    /// Restores the position columns from a checkpoint. Site indices
    /// must already be validated against the geometry.
    pub(crate) fn set_columns(&mut self, site: &[u32], travel: &[u32]) {
        debug_assert_eq!(site.len(), travel.len());
        // audit:allow(cast): u32 → usize widening (usize ≥ 32 bits on supported targets).
        debug_assert!(site.iter().all(|&s| (s as usize) < self.num_sites.max(1)));
        self.site.clear();
        self.site.extend_from_slice(site);
        self.travel.clear();
        self.travel.extend_from_slice(travel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_env::DemandVector;
    use antalloc_noise::NoiseModel;

    fn two_site_config() -> ArenaConfig {
        ArenaConfig {
            site_of_task: vec![0, 1],
            travel_rounds: 2,
            wander_probability: 1.0,
        }
    }

    fn prepared(k: usize) -> PreparedRound {
        NoiseModel::Exact.prepare(1, &vec![1; k], &vec![10; k])
    }

    #[test]
    fn rows_mask_non_local_tasks_as_fixed_overload() {
        let mut a = ArenaState::new(&two_site_config(), 4, 7);
        let prep = prepared(2);
        a.build_round(&prep);
        let sensed = a.sensed(&prep);
        assert!(sensed.shared_view().is_none());
        // Ant 0 sits at site 0: task 0 real, task 1 masked.
        let mut rng = antalloc_rng::Xoshiro256pp::seed_from_u64(0);
        let v0 = sensed.view_for(0);
        assert!(v0.sample(0, &mut rng).is_lack());
        assert!(!v0.sample(1, &mut rng).is_lack());
        // Ant 1 sits at site 1: mirrored.
        let v1 = sensed.view_for(1);
        assert!(!v1.sample(0, &mut rng).is_lack());
        assert!(v1.sample(1, &mut rng).is_lack());
    }

    #[test]
    fn travelers_sense_nothing_and_arrive_on_schedule() {
        let mut a = ArenaState::new(&two_site_config(), 2, 3);
        let idle = TaskColumn::new(2);
        a.wander(1, &idle); // p = 1: both ants depart, travel = 2.
        assert!(a.travel().iter().all(|&t| t == 2));
        let prep = prepared(2);
        a.build_round(&prep);
        let sensed = a.sensed(&prep);
        let mut rng = antalloc_rng::Xoshiro256pp::seed_from_u64(0);
        for ant in 0..2 {
            let v = sensed.view_for(ant);
            assert!(!v.sample(0, &mut rng).is_lack());
            assert!(!v.sample(1, &mut rng).is_lack());
        }
        // Travelers are not eligible to wander; counters tick down.
        a.wander(2, &idle);
        assert!(a.travel().iter().all(|&t| t == 1));
        a.wander(3, &idle); // arrive (1 -> 0) and immediately re-wander (p = 1).
        assert!(a.travel().iter().all(|&t| t == 2));
    }

    #[test]
    fn working_ants_never_wander_and_single_site_is_inert() {
        let mut a = ArenaState::new(&two_site_config(), 2, 3);
        let column = TaskColumn::new(2);
        column.store(0, 1); // ant 0 works task 1; ant 1 idle.
        let before = a.site()[0];
        a.wander(1, &column);
        assert_eq!(a.site()[0], before);
        assert_eq!(a.travel()[0], 0);
        assert_eq!(a.travel()[1], 2); // the idle ant departed (p = 1).

        let mut single = ArenaState::new(&ArenaConfig::single_site(2), 2, 3);
        assert!(single.is_single_site());
        single.wander(1, &TaskColumn::new(2));
        assert!(single.travel().iter().all(|&t| t == 0));
    }

    #[test]
    fn sync_snaps_workers_and_spawn_remove_mirror_population() {
        let cfg = ArenaConfig {
            site_of_task: vec![0, 1, 2],
            travel_rounds: 0,
            wander_probability: 0.5,
        };
        let mut a = ArenaState::new(&cfg, 3, 9);
        assert_eq!(a.site(), &[0, 1, 2]);
        let mut colony = ColonyState::new(3, DemandVector::new(vec![5, 5, 5]));
        colony.apply(0, Assignment::Task(2));
        a.sync_to_colony(&colony);
        assert_eq!(a.site()[0], 2); // snapped to task 2's site
        a.spawn();
        assert_eq!(a.len(), 4);
        assert_eq!(a.site()[3], 0); // home site of global index 3
        a.remove(0); // swap-remove: last ant slides into slot 0
        assert_eq!(a.site(), &[0, 1, 2]);
    }
}
