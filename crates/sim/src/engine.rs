//! The synchronous round engine (§2.1), stepping bank-wise.
//!
//! ## Data-oriented core
//!
//! Ants live in homogeneous [`antalloc_core::ControllerBank`]s owned by
//! a [`crate::population::Population`] (see its docs for the full
//! ant → (bank, slot) index invariants): one bank per controller kind,
//! so a homogeneous colony pays its controller dispatch once per round
//! and the hot loop is monomorphic. `ControllerSpec::Mix` colonies are
//! simply several banks over one colony; every engine operation —
//! stepping, perturbation, checkpointing, parallel partitioning — is
//! bank-wise.
//!
//! ## The bit-identity contract
//!
//! The non-negotiable spine of the engine: for a fixed config and seed,
//! every stepping path produces **bit-identical** loads, assignments
//! and round traces —
//!
//! * serial [`SyncEngine::run`] versus multi-threaded
//!   [`SyncEngine::run_parallel`] at any thread count,
//! * bank-wise stepping versus per-ant reference stepping (each ant
//!   consumes only its own RNG stream, in the same order; see
//!   [`antalloc_core::step_slice`]),
//! * a checkpoint captured at a phase boundary, restored and resumed,
//!   versus the uninterrupted run.
//!
//! Rounds are double-buffered through a fused apply: sub-round 1 steps
//! kernels that write every ant's next assignment straight into the
//! engine-owned next-state [`antalloc_env::TaskColumn`] (accumulating a
//! commutative [`antalloc_env::RoundDelta`]), sub-round 2 is an O(1)
//! column swap plus an O(k) delta application — there is no separate
//! apply sweep. *Write* order is therefore immaterial: column slots are
//! disjoint per ant, load/idle transitions commute, and the switch
//! count is a sum. Consumption order of randomness is what matters, and
//! that is per-ant by construction. `tests/determinism.rs` and the bank
//! property tests in `tests/banks.rs` hold this contract down.

use std::sync::Arc;

use antalloc_core::AnyController;
use antalloc_env::{
    Assignment, ColonyState, ColonyView, ColumnWriter, DemandVector, Event, InitialConfig,
    Perturbation, RoundDelta, TaskColumn, Timeline, TriggerState,
};
use antalloc_noise::{NoiseModel, PreparedRound, SensedRound};
use antalloc_rng::{reserved, AntRng, StreamSeeder};

use crate::arena::ArenaState;
use crate::config::{ControllerSpec, SimConfig};
use crate::observer::Observer;
use crate::population::Population;

/// The sub-seeder every timeline-event draw derives from: a pure
/// function of the master seed, keyed per firing round, so scripted
/// shocks consume identical randomness on every stepping path.
pub(crate) fn event_seeder(seed: u64) -> StreamSeeder {
    StreamSeeder::new(StreamSeeder::new(seed).stream(reserved::EVENT).next_u64())
}

/// Applies a colony-level perturbation, keeping controllers, RNG
/// streams and the environment mutually consistent. Shared by
/// [`SyncEngine::perturb`], the timeline event executor, and the
/// sequential engine.
pub(crate) fn apply_perturbation(
    p: &Perturbation,
    colony: &mut ColonyState,
    population: &mut Population,
    mut arena: Option<&mut ArenaState>,
    rng: &mut AntRng,
    seeder: &StreamSeeder,
    next_stream: &mut u64,
) {
    let swaps = p.apply(colony, rng);
    match p {
        Perturbation::KillRandom { .. } => {
            for &(slot, _) in &swaps {
                population.remove(slot);
                if let Some(a) = arena.as_deref_mut() {
                    a.remove(slot);
                }
            }
            // Kills without swaps (victim was last) still shrink us.
            while population.len() > colony.num_ants() {
                let last = population.len() - 1;
                population.remove(last);
                if let Some(a) = arena.as_deref_mut() {
                    a.remove(last);
                }
            }
        }
        Perturbation::Spawn { count } => {
            let k = colony.num_tasks();
            for _ in 0..*count {
                let stream = seeder.stream(*next_stream);
                population.spawn(k, *next_stream, stream);
                *next_stream += 1;
                if let Some(a) = arena.as_deref_mut() {
                    a.spawn();
                }
            }
        }
        Perturbation::Scramble | Perturbation::StampedeTo(_) => {
            population.reset_to_colony(colony);
            // Ants teleported onto a task stand at its site; idle ants
            // keep their position (and any in-flight travel).
            if let Some(a) = arena.as_deref_mut() {
                a.sync_to_colony(colony);
            }
        }
    }
    debug_assert!(colony.recount_consistent());
    debug_assert_eq!(population.len(), colony.num_ants());
    debug_assert!(population.check_invariants());
    debug_assert!(arena.is_none_or(|a| a.len() == colony.num_ants()));
}

/// The end-of-round summary timeline triggers are evaluated over,
/// shared by both engines so triggered scenarios are model-portable.
pub(crate) fn colony_view<'a>(
    round: u64,
    post_deficits: &'a [i64],
    colony: &ColonyState,
) -> ColonyView<'a> {
    ColonyView {
        round,
        regret: post_deficits.iter().map(|d| d.unsigned_abs()).sum(),
        population: colony.num_ants(),
        idle: colony.idle_count(),
        deficits: post_deficits,
    }
}

/// Applies one timeline event. Population shocks route through
/// [`apply_perturbation`]; demand and noise rewrites are pure.
#[allow(clippy::too_many_arguments)] // engine-internal plumbing
pub(crate) fn apply_event(
    event: &Event,
    colony: &mut ColonyState,
    population: &mut Population,
    arena: Option<&mut ArenaState>,
    noise: &mut NoiseModel,
    rng: &mut AntRng,
    seeder: &StreamSeeder,
    next_stream: &mut u64,
) {
    match event {
        Event::SetDemands(demands) => colony.demands_mut().set(demands),
        Event::SetTaskDemand { task, demand } => {
            colony.demands_mut().set_task(*task, *demand);
        }
        Event::SetNoise(model) => *noise = model.clone(),
        shock => {
            let p = shock
                .as_perturbation()
                // audit:allow(panic-path): exhaustive by construction — the match above consumed every pure event kind.
                .expect("non-pure events are perturbations");
            apply_perturbation(&p, colony, population, arena, rng, seeder, next_stream);
        }
    }
}

/// What an [`Observer`] sees after each round.
#[derive(Clone, Copy, Debug)]
pub struct RoundRecord<'a> {
    /// The round `t` just completed (1-based).
    pub round: u64,
    /// Post-decision deficits `Δ(j)_t`.
    pub deficits: &'a [i64],
    /// Demands `d(j)` in force this round.
    pub demands: &'a [u64],
    /// Post-decision loads `W(j)_t`.
    pub loads: &'a [u32],
    /// Idle ants after this round.
    pub idle: u64,
    /// Number of ants whose assignment changed this round.
    pub switches: u64,
}

impl RoundRecord<'_> {
    /// Instantaneous regret `r(t) = Σ|Δ(j)_t|`.
    pub fn instant_regret(&self) -> u64 {
        self.deficits.iter().map(|d| d.unsigned_abs()).sum()
    }
}

/// Checkpointable engine state, borrowed from a live engine.
pub(crate) struct EngineState<'a> {
    /// The configuration (including the full timeline).
    pub config: &'a SimConfig,
    /// Ground truth (current demands and assignments).
    pub colony: &'a ColonyState,
    /// The noise model currently in force (timeline `SetNoise` events
    /// may have switched it away from `config.noise`).
    pub noise: &'a NoiseModel,
    /// Per-ant RNG states in global ant order.
    pub rng_states: Vec<[u64; 4]>,
    /// The current round.
    pub round: u64,
    /// Next RNG stream id for spawned ants.
    pub next_stream: u64,
    /// One-shot timeline events already consumed (indexes the
    /// *compiled* timeline: scripted plus generated events).
    pub cursor: u64,
    /// Per-ant bank membership for mixed colonies.
    pub members: Option<Vec<u16>>,
    /// Runtime state of every timeline trigger, in timeline order.
    pub trigger_states: Vec<TriggerState>,
    /// Mid-phase controller scratch (Precise Sigmoid counters), in
    /// global ant order; empty for scratch-free colonies.
    pub scratch: Vec<(u32, antalloc_core::ControllerScratch)>,
    /// Arena position column (site per ant, global ant order); empty
    /// for well-mixed scenarios.
    pub arena_site: Vec<u32>,
    /// Arena travel column (transit rounds remaining per ant); empty
    /// for well-mixed scenarios.
    pub arena_travel: Vec<u32>,
}

/// One bank's slice of the colony, as seen by [`SyncEngine::bank_census`].
#[derive(Clone, Debug)]
pub struct BankCensus {
    /// The (non-`Mix`) spec this bank runs.
    pub spec: ControllerSpec,
    /// Ants currently in the bank.
    pub ants: usize,
    /// How many of them are working on some task.
    pub working: u64,
}

/// The synchronous simulation engine.
///
/// One [`SyncEngine::step`] is the paper's round: sub-round 1 exposes
/// the previous round's loads to every ant through its private noisy
/// feedback; sub-round 2 applies all decisions simultaneously.
pub struct SyncEngine {
    config: SimConfig,
    /// The config's timeline with random generators expanded into
    /// concrete one-shot events (identical to `config.timeline` when no
    /// generators are declared). All stepping reads this one.
    compiled: Timeline,
    colony: ColonyState,
    population: Population,
    noise: NoiseModel,
    seeder: StreamSeeder,
    event_seeder: StreamSeeder,
    init_rng: AntRng,
    round: u64,
    /// One-shot timeline events consumed so far (monotone cursor over
    /// the compiled stream).
    cursor: usize,
    /// Runtime state of every timeline trigger.
    trigger_states: Vec<TriggerState>,
    /// Deficits frozen at the end of the previous round (sensing input).
    pre_deficits: Vec<i64>,
    /// Deficits after this round's decisions (observation output).
    post_deficits: Vec<i64>,
    /// Stream ids handed out so far (spawned ants get fresh streams).
    next_stream: u64,
    /// The *next* half of the double-buffered assignment column: step
    /// kernels write it, committing swaps it with the colony's current
    /// column. Engine-owned so workers can share it immutably while the
    /// coordinator keeps `&mut` access to the colony.
    next_column: TaskColumn,
    /// Serial-path round-delta scratch (reused every round).
    round_delta: RoundDelta,
    /// Per-worker round-delta scratch for the pooled path, slot 0 being
    /// the coordinator's. Reused across rounds and segments; each
    /// worker locks only its own slot between the round barriers, the
    /// coordinator merges in its exclusive window.
    worker_deltas: Vec<parking_lot::Mutex<RoundDelta>>,
    /// Spatial runtime for arena scenarios (`None` for well-mixed).
    /// Behind a lock only for the pooled path's sake: workers read the
    /// frozen sense rows between the round barriers, the coordinator
    /// writes (sense-row rebuild, wander pass) in its exclusive
    /// windows — the lock is never contended.
    arena: Option<parking_lot::RwLock<ArenaState>>,
}

impl SyncEngine {
    pub(crate) fn new(config: SimConfig, demands: DemandVector) -> Self {
        let n = config.n;
        let k = demands.num_tasks();
        let seeder = StreamSeeder::new(config.seed);
        let population = Population::build(&config.controller, config.seed, k, n);
        let compiled = config.timeline.compile(config.seed, n, demands.as_slice());
        let trigger_states = compiled.initial_trigger_states();
        let mut engine = Self {
            colony: ColonyState::new(n, demands),
            population,
            noise: config.noise.clone(),
            seeder,
            event_seeder: event_seeder(config.seed),
            init_rng: seeder.stream(reserved::INIT),
            round: 0,
            cursor: 0,
            trigger_states,
            pre_deficits: vec![0; k],
            post_deficits: vec![0; k],
            next_stream: n as u64,
            next_column: TaskColumn::new(n),
            round_delta: RoundDelta::new(k),
            worker_deltas: Vec::new(),
            arena: config
                .arena
                .as_ref()
                .map(|a| parking_lot::RwLock::new(ArenaState::new(a, n, config.seed))),
            compiled,
            config,
        };
        let initial = engine.config.initial.clone();
        engine.set_initial(&initial);
        engine
    }

    /// Rebuilds this engine in place to the state `config.build()`
    /// would produce, reusing allocations wherever shapes allow (shrink
    /// keeps capacity, grow reallocates; a controller-kind change
    /// rebuilds just that bank). The result is **bit-identical** to a
    /// freshly built engine — the sweep runner leans on this to keep
    /// one engine per worker across an entire ensemble.
    ///
    /// Unlike [`SimConfig::build`] this performs no validation: callers
    /// (the sweep's per-grid-point precheck) are expected to have
    /// validated `config` already.
    pub fn reset_from(&mut self, config: &SimConfig) {
        let n = config.n;
        let k = config.demands.len();
        self.config.clone_from(config);
        self.colony.rebuild_in(n, &config.demands);
        self.population
            .rebuild_in(&config.controller, config.seed, k, n);
        self.noise.clone_from(&config.noise);
        self.seeder = StreamSeeder::new(config.seed);
        self.event_seeder = event_seeder(config.seed);
        self.init_rng = self.seeder.stream(reserved::INIT);
        self.round = 0;
        self.cursor = 0;
        self.compiled = config.timeline.compile(config.seed, n, &config.demands);
        self.trigger_states = self.compiled.initial_trigger_states();
        self.pre_deficits.clear();
        self.pre_deficits.resize(k, 0);
        self.post_deficits.clear();
        self.post_deficits.resize(k, 0);
        self.next_stream = n as u64;
        self.next_column.reset(n);
        self.round_delta.reset(k);
        // worker_deltas are pure scratch: grown on demand, reset at
        // every segment start, so stale capacity cannot leak state.
        self.arena = config
            .arena
            .as_ref()
            .map(|a| parking_lot::RwLock::new(ArenaState::new(a, n, config.seed)));
        let initial = self.config.initial.clone();
        self.set_initial(&initial);
    }

    /// Applies an initial configuration (Theorem 3.1's "arbitrary
    /// initial allocation"), syncing controllers to the environment.
    pub fn set_initial(&mut self, initial: &InitialConfig) {
        initial.apply(&mut self.colony, &mut self.init_rng);
        self.population.reset_to_colony(&self.colony);
        if let Some(arena) = &mut self.arena {
            arena.get_mut().sync_to_colony(&self.colony);
        }
    }

    /// The current round number (rounds are 1-based; 0 before any step).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The colony's ground truth.
    pub fn colony(&self) -> &ColonyState {
        &self.colony
    }

    /// The configuration this engine was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Total memory used by one ant's controller, in bits (ant 0; for
    /// mixed colonies see [`SyncEngine::bank_census`] per sub-spec).
    pub fn controller_memory_bits(&self) -> u32 {
        if self.population.len() == 0 {
            0
        } else {
            self.population.memory_bits(0)
        }
    }

    /// The runtime state of every timeline trigger, in timeline order
    /// (empty for trigger-free scenarios). Benches use this to report
    /// how many conditional shocks a run actually absorbed.
    pub fn trigger_states(&self) -> &[TriggerState] {
        &self.trigger_states
    }

    /// Per-bank population and load census: which controller kind holds
    /// how much of the colony right now. Homogeneous colonies report a
    /// single bank.
    pub fn bank_census(&self) -> Vec<BankCensus> {
        self.population
            .banks()
            .iter()
            .map(|bank| BankCensus {
                spec: bank.spec.clone(),
                ants: bank.len(),
                working: bank
                    .ants
                    .iter()
                    .filter(|&&i| !self.colony.assignment(i as usize).is_idle())
                    .count() as u64,
            })
            .collect()
    }

    /// Clones every controller into the per-ant dispatch enum, in
    /// global ant order — the *reference* representation. Bank-wise
    /// stepping is bit-identical to stepping these with
    /// [`antalloc_core::Controller::step`] against per-ant probes; the
    /// bank property tests and the `perf_engine` pre-bank baseline lean
    /// on this.
    pub fn reference_controllers(&self) -> Vec<AnyController> {
        self.population.reference_controllers()
    }

    /// Fires every timeline event scheduled for the current round:
    /// one-shots past the cursor, then cycle generators, then triggers
    /// armed at the end of the previous round. All events of one round
    /// share a generator derived purely from `(master seed, round)`, so
    /// firing is stepping-path independent.
    fn fire_events(&mut self) {
        let mut fired = Vec::new();
        self.compiled
            .fire_into(self.round, &mut self.cursor, &mut fired);
        self.compiled
            .fire_triggers_into(self.round, &mut self.trigger_states, &mut fired);
        if fired.is_empty() {
            return;
        }
        let mut rng = self.event_seeder.stream(self.round);
        let mut arena = self.arena.as_mut().map(|l| l.get_mut());
        for event in &fired {
            apply_event(
                event,
                &mut self.colony,
                &mut self.population,
                arena.as_deref_mut(),
                &mut self.noise,
                &mut rng,
                &self.seeder,
                &mut self.next_stream,
            );
        }
    }

    fn begin_round(&mut self) -> PreparedRound {
        self.round += 1;
        self.fire_events();
        self.colony.deficits_into(&mut self.pre_deficits);
        self.noise.prepare(
            self.round,
            &self.pre_deficits,
            self.colony.demands().as_slice(),
        )
    }

    fn finish_round(&mut self, switches: u64, observer: &mut impl Observer) {
        self.colony.deficits_into(&mut self.post_deficits);
        let record = RoundRecord {
            round: self.round,
            deficits: &self.post_deficits,
            demands: self.colony.demands().as_slice(),
            loads: self.colony.loads(),
            idle: self.colony.idle_count(),
            switches,
        };
        observer.on_round(&record);
        if self.compiled.has_triggers() {
            let view = colony_view(self.round, &self.post_deficits, &self.colony);
            self.compiled
                .observe_triggers(&mut self.trigger_states, &view);
        }
    }

    /// Whether a trigger armed at the end of the last round (its event
    /// fires at the start of the next one — which must step serially).
    fn trigger_pending(&self) -> bool {
        self.trigger_states.iter().any(|s| s.pending)
    }

    /// Runs one synchronous round on the current thread: kernels write
    /// the next-state column fused, then the round commits as an O(1)
    /// column swap plus the accumulated delta.
    pub fn step(&mut self, observer: &mut impl Observer) {
        let prepared = self.begin_round();
        // Events fired in begin_round may have resized the population.
        self.next_column.resize(self.population.len());
        self.round_delta.reset(self.colony.num_tasks());
        if let Some(arena) = &mut self.arena {
            arena.get_mut().build_round(&prepared);
        }
        // The read guard is uncontended here (serial path); it exists
        // so the pooled path can share the identical sensing code.
        let arena_guard = self.arena.as_ref().map(|l| l.read());
        let sensed = match &arena_guard {
            Some(a) => a.sensed(&prepared),
            None => SensedRound::shared(&prepared),
        };
        self.population.step_round(
            sensed,
            self.colony.task_column(),
            &self.next_column,
            &mut self.round_delta,
        );
        drop(arena_guard);
        let switches = self.round_delta.switches();
        self.colony
            .commit_round(&mut self.next_column, &self.round_delta);
        if let Some(arena) = &mut self.arena {
            arena
                .get_mut()
                .wander(self.round, self.colony.task_column());
        }
        self.finish_round(switches, observer);
    }

    /// Runs `rounds` rounds serially.
    pub fn run(&mut self, rounds: u64, observer: &mut impl Observer) {
        for _ in 0..rounds {
            self.step(observer);
        }
    }

    /// Runs one round with ants partitioned across worker threads.
    ///
    /// Bit-identical to [`SyncEngine::step`]. Prefer
    /// [`SyncEngine::run_parallel`] for multi-round runs — it amortizes
    /// worker startup across the whole run.
    pub fn step_parallel(&mut self, threads: usize, observer: &mut impl Observer) {
        self.run_parallel(1, threads, observer);
    }

    /// Runs `rounds` rounds with ants partitioned across `threads`
    /// worker threads, bit-identical to the serial path.
    ///
    /// Workers are spawned **once per event-free segment** (once per
    /// call for a static timeline) and synchronize with the coordinator
    /// through two [`std::sync::Barrier`] crossings per round: the
    /// coordinator prepares the round's feedback state, workers step
    /// their fixed bank chunks — each writing its ants' next
    /// assignments straight into a cache-line-sharded slice of the
    /// shared next-state column while folding switch/load/idle changes
    /// into a worker-local delta — and the coordinator merges the
    /// per-worker deltas in its exclusive window (no global re-read
    /// sweep). Rounds at which a timeline event fires step serially
    /// (events may resize the population under the workers' partition);
    /// determinism is unconditional either way, because every ant
    /// consumes only its own RNG stream and events only reserved
    /// per-round streams.
    ///
    /// Falls back to the serial path when the colony is too small for
    /// the per-round synchronization to pay off.
    pub fn run_parallel(&mut self, rounds: u64, threads: usize, observer: &mut impl Observer) {
        // Two barrier crossings cost ~10µs/round; an ant-step ~30ns.
        // Below ~8k ants per worker the serial path wins.
        self.run_parallel_impl(rounds, threads, 8_000, observer)
    }

    /// Like [`SyncEngine::run_parallel`] but always takes the pooled
    /// path, however small the colony. Exists so tests can exercise the
    /// worker machinery at sizes where production code would fall back
    /// to serial; not useful for performance.
    #[doc(hidden)]
    pub fn run_parallel_forced(
        &mut self,
        rounds: u64,
        threads: usize,
        observer: &mut impl Observer,
    ) {
        self.run_parallel_impl(rounds, threads, 1, observer)
    }

    /// The segmenting wrapper around the pooled path: timeline events
    /// may resize the population or scramble controllers, which would
    /// invalidate the per-run bank partition workers hold — so the run
    /// splits into event-free parallel segments, and each event round
    /// steps serially (bit-identical to the pooled path by the engine's
    /// contract). Timelines are sparse, so the serial rounds are noise.
    ///
    /// Trigger firing rounds are not known from the config alone, so a
    /// segment also ends the moment a trigger *arms* (its event fires
    /// at the start of the next round): [`Self::run_parallel_segment`]
    /// evaluates triggers in the coordinator's exclusive end-of-round
    /// window and returns early, and the firing round steps serially
    /// here — the identical firing path the serial engine takes.
    fn run_parallel_impl(
        &mut self,
        rounds: u64,
        threads: usize,
        min_ants_per_worker: usize,
        observer: &mut impl Observer,
    ) {
        let mut remaining = rounds;
        while remaining > 0 {
            if self.trigger_pending() {
                // A triggered event fires this round; step it serially
                // (it may resize the population under a partition).
                self.step(observer);
                remaining -= 1;
                continue;
            }
            match self.compiled.next_firing(self.round, self.cursor) {
                Some(r) if r - self.round <= remaining => {
                    let quiet = r - self.round - 1;
                    if quiet > 0 {
                        let done = self.run_parallel_segment(
                            quiet,
                            threads,
                            min_ants_per_worker,
                            observer,
                        );
                        remaining -= done;
                        if done < quiet {
                            // A trigger armed mid-segment; re-plan.
                            continue;
                        }
                    }
                    self.step(observer);
                    remaining -= 1;
                }
                _ => {
                    let done = self.run_parallel_segment(
                        remaining,
                        threads,
                        min_ants_per_worker,
                        observer,
                    );
                    remaining -= done;
                }
            }
        }
    }

    /// Runs up to `rounds` scheduled-event-free rounds on the worker
    /// pool (the caller guarantees no one-shot or cycle fires inside
    /// the segment). Returns the rounds actually completed: fewer than
    /// `rounds` when a trigger arms, since its event must fire — and
    /// therefore step — outside the pooled partition.
    fn run_parallel_segment(
        &mut self,
        rounds: u64,
        threads: usize,
        min_ants_per_worker: usize,
        observer: &mut impl Observer,
    ) -> u64 {
        use std::sync::atomic::{AtomicBool, Ordering};

        assert!(threads >= 1);
        let n = self.population.len();
        // Size the pool by how many workers the colony can keep busy,
        // clamped by the requested thread count — `workers` can never
        // exceed `threads`. Anything that cannot sustain two busy
        // workers runs serially.
        let workers = (n / min_ants_per_worker.max(1)).min(threads);
        if workers < 2 {
            // The serial path handles trigger rounds inline, so the
            // whole segment always completes here.
            self.run(rounds, observer);
            return rounds;
        }
        // Round chunk boundaries up to 16 ants (16 × u32 = one 64-byte
        // cache line in the next-state column) so no two workers ever
        // write the same destination line.
        let chunk = n.div_ceil(workers).next_multiple_of(16);

        self.next_column.resize(n);
        let k = self.colony.num_tasks();
        // Per-worker delta scratch (slot 0 = coordinator), reused
        // across rounds and segments.
        if self.worker_deltas.len() < workers {
            self.worker_deltas
                .resize_with(workers, || parking_lot::Mutex::new(RoundDelta::new(k)));
        }
        // The double buffer, shared immutably with every worker: on a
        // round with parity `p` kernels read prior assignments from
        // `columns[p]` and write next assignments into `columns[p ^ 1]`
        // (relaxed stores into disjoint slots; the `done` barrier
        // orders them before the coordinator's merge). Flipping the
        // parity in the coordinator's exclusive window *is* the apply
        // pass — no data moves. The colony's task column is lent into
        // slot 0 for the segment and restored afterwards.
        let columns = [
            self.colony.take_column(),
            core::mem::replace(&mut self.next_column, TaskColumn::new(0)),
        ];
        // The coordinator publishes each round's prepared feedback and
        // parity here — one Arc bump per round, no deep clone; workers
        // only read it between the two barriers of a round.
        let shared: parking_lot::RwLock<Option<(Arc<PreparedRound>, usize)>> =
            parking_lot::RwLock::new(None);
        // Participants: (workers − 1) spawned threads + the coordinator,
        // which steps chunk 0 itself.
        let start = std::sync::Barrier::new(workers);
        let done = std::sync::Barrier::new(workers);
        let stop = AtomicBool::new(false);

        // Partition the banks once for the whole run: each worker owns
        // a disjoint set of (bank chunk, RNG chunk, ant-id chunk)
        // triples covering ~`chunk` ants.
        let parts = self.population.partition_mut(workers, chunk);

        // Fields the coordinator keeps for itself during the scope.
        let colony = &mut self.colony;
        let noise = &self.noise;
        let round = &mut self.round;
        let pre_deficits = &mut self.pre_deficits;
        let post_deficits = &mut self.post_deficits;
        let compiled = &self.compiled;
        let trigger_states = &mut self.trigger_states;
        let worker_deltas = &self.worker_deltas;
        let columns_ref = &columns;
        let arena = &self.arena;

        let completed = crossbeam::thread::scope(|scope| {
            // The coordinator doubles as the worker for chunk 0, so the
            // run uses exactly `workers` OS threads (no oversubscription
            // from a dedicated coordinator).
            let mut parts = parts.into_iter();
            // audit:allow(panic-path): the partitioner always emits >= 1 chunk for a non-empty colony (checked above).
            let mut own_part = parts.next().expect("at least one chunk");
            for (w, part) in parts.enumerate() {
                let slot = &worker_deltas[w + 1];
                let shared = &shared;
                let start = &start;
                let done = &done;
                let stop = &stop;
                let columns = columns_ref;
                let mut part = part;
                scope.spawn(move |_| loop {
                    start.wait();
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let (prepared, parity) = {
                        let guard = shared.read();
                        // audit:allow(panic-path): the coordinator publishes the prepared round before releasing the start barrier.
                        let (prepared, parity) = guard.as_ref().expect("round prepared");
                        (Arc::clone(prepared), *parity)
                    };
                    {
                        // Only this worker touches its slot between the
                        // barriers, so the lock is uncontended; it must
                        // drop before `done` so the coordinator's merge
                        // can take it. Same for the arena read guard:
                        // the coordinator rebuilt the sense rows before
                        // releasing `start` and next writes only after
                        // `done`.
                        let mut delta = slot.lock();
                        delta.reset(k);
                        let arena_guard = arena.as_ref().map(|l| l.read());
                        let sensed = match &arena_guard {
                            Some(a) => a.sensed(&prepared),
                            None => SensedRound::shared(&prepared),
                        };
                        let mut writer =
                            ColumnWriter::new(&columns[parity], &columns[parity ^ 1], &mut delta);
                        for (slice, rngs, ids) in part.iter_mut() {
                            slice.step_batch_fused(sensed, rngs, ids, &mut writer);
                        }
                    }
                    done.wait();
                });
            }

            let mut completed = 0u64;
            let mut parity = 0usize;
            for _ in 0..rounds {
                // Exclusive window: begin the round (event-free by the
                // segment contract).
                *round += 1;
                colony.deficits_into(pre_deficits);
                let prepared =
                    Arc::new(noise.prepare(*round, pre_deficits, colony.demands().as_slice()));
                // Still exclusive: freeze this round's sense rows before
                // any worker can read them.
                if let Some(l) = arena {
                    l.write().build_round(&prepared);
                }
                *shared.write() = Some((Arc::clone(&prepared), parity));
                start.wait();
                // Step the coordinator's own chunks alongside the workers.
                {
                    let mut delta = worker_deltas[0].lock();
                    delta.reset(k);
                    let arena_guard = arena.as_ref().map(|l| l.read());
                    let sensed = match &arena_guard {
                        Some(a) => a.sensed(&prepared),
                        None => SensedRound::shared(&prepared),
                    };
                    let mut writer = ColumnWriter::new(
                        &columns_ref[parity],
                        &columns_ref[parity ^ 1],
                        &mut delta,
                    );
                    for (slice, rngs, ids) in own_part.iter_mut() {
                        slice.step_batch_fused(sensed, rngs, ids, &mut writer);
                    }
                }
                done.wait();
                // Exclusive window: merge the per-worker deltas. All
                // delta fields are commutative (sums and disjoint XOR
                // flips), so merge order is immaterial. Flipping the
                // parity afterwards IS the apply pass: the column the
                // workers just filled becomes the authoritative
                // previous column for the next round — no data moves.
                let mut switches = 0u64;
                for slot in &worker_deltas[..workers] {
                    let delta = slot.lock();
                    switches += delta.switches();
                    colony.apply_round_delta(&delta);
                }
                parity ^= 1;
                // Exclusive window: the wander pass runs against the
                // just-flipped authoritative column, exactly where the
                // serial path runs it after `commit_round`.
                if let Some(l) = arena {
                    l.write().wander(*round, &columns_ref[parity]);
                }
                colony.deficits_into(post_deficits);
                let record = RoundRecord {
                    round: *round,
                    deficits: post_deficits,
                    demands: colony.demands().as_slice(),
                    loads: colony.loads(),
                    idle: colony.idle_count(),
                    switches,
                };
                observer.on_round(&record);
                completed += 1;
                // Still inside the exclusive window: evaluate triggers
                // exactly as the serial path's finish_round does. An
                // armed trigger ends the segment — its event fires at
                // the start of the next round, outside the partition.
                if compiled.has_triggers() {
                    // The colony's task column is on loan to `columns`
                    // for the whole segment, so `colony.num_ants()`
                    // would read 0 here — build the view from the
                    // segment's own population count instead.
                    let view = ColonyView {
                        round: *round,
                        regret: post_deficits.iter().map(|d| d.unsigned_abs()).sum(),
                        population: n,
                        idle: colony.idle_count(),
                        deficits: post_deficits,
                    };
                    if compiled.observe_triggers(trigger_states, &view) {
                        break;
                    }
                }
            }
            stop.store(true, Ordering::Release);
            start.wait();
            (completed, parity)
        })
        // audit:allow(panic-path): propagating a worker panic is the only sane response — the round state is torn.
        .expect("worker thread panicked");
        let (completed, parity) = completed;
        // Return the loaned columns: the parity-current one becomes the
        // colony's authoritative column again (O(1) move — the parity
        // flips already "applied" every round), the other becomes the
        // engine's reusable next-state scratch.
        let [a, b] = columns;
        let (current, scratch) = if parity == 0 { (a, b) } else { (b, a) };
        self.colony.restore_column(current);
        self.next_column = scratch;
        completed
    }

    /// Applies a mid-run perturbation, keeping controllers, RNG streams
    /// and the environment mutually consistent.
    ///
    /// Imperative shocks draw from the engine's init stream; prefer
    /// scripting shocks in the config's [`antalloc_env::Timeline`],
    /// whose events draw from per-round reserved streams and therefore
    /// survive checkpoint-restore bit-identically.
    pub fn perturb(&mut self, p: &Perturbation) {
        apply_perturbation(
            p,
            &mut self.colony,
            &mut self.population,
            self.arena.as_mut().map(|l| l.get_mut()),
            &mut self.init_rng,
            &self.seeder,
            &mut self.next_stream,
        );
    }

    /// Accessors used by checkpointing; see [`EngineState`].
    pub(crate) fn state_parts(&self) -> EngineState<'_> {
        let members = if self.population.is_mixed() {
            Some(self.population.members())
        } else {
            None
        };
        let (arena_site, arena_travel) = match &self.arena {
            Some(l) => {
                let a = l.read();
                (a.site().to_vec(), a.travel().to_vec())
            }
            None => (Vec::new(), Vec::new()),
        };
        EngineState {
            config: &self.config,
            colony: &self.colony,
            noise: &self.noise,
            rng_states: self.population.rng_states(),
            round: self.round,
            next_stream: self.next_stream,
            cursor: self.cursor as u64,
            members,
            trigger_states: self.trigger_states.clone(),
            scratch: self.population.scratches(),
            arena_site,
            arena_travel,
        }
    }

    /// Rebuilds this engine in place from checkpointed parts, reusing
    /// allocations like [`SyncEngine::reset_from`] (the restore-into-a-
    /// reused-engine path; `Checkpoint::restore` routes through it too,
    /// via a freshly built shell). `members` carries the
    /// per-ant bank membership for mixed colonies (empty otherwise);
    /// `noise` is the model in force at capture time (it may differ
    /// from `config.noise` after a `SetNoise` event); `cursor` is the
    /// number of one-shot events of the *compiled* timeline already
    /// consumed (generators re-expand identically from the seed);
    /// `trigger_states` is the captured runtime state of every trigger
    /// (empty for pre-trigger checkpoint formats, which cannot carry
    /// triggers in the first place); `scratch` carries mid-phase
    /// controller counters (Precise Sigmoid) for captures between phase
    /// boundaries (empty for pre-v5 formats, whose captures were
    /// boundary-only and therefore scratch-free).
    #[allow(clippy::too_many_arguments)] // checkpoint-internal plumbing
    pub(crate) fn restore_parts_in(
        &mut self,
        config: &SimConfig,
        demands: &[u64],
        noise: &NoiseModel,
        assignments: &[Assignment],
        rng_states: &[[u64; 4]],
        round: u64,
        next_stream: u64,
        cursor: u64,
        members: &[u16],
        trigger_states: &[TriggerState],
        scratch: &[(u32, antalloc_core::ControllerScratch)],
        arena_columns: Option<(&[u32], &[u32])>,
    ) {
        let n = assignments.len();
        let k = demands.len();
        self.config.clone_from(config);
        self.colony.rebuild_in(n, demands);
        for (i, &a) in assignments.iter().enumerate() {
            self.colony.apply(i, a);
        }
        if members.is_empty() {
            self.population
                .rebuild_in(&config.controller, config.seed, k, n);
        } else {
            self.population
                .rebuild_from_members_in(&config.controller, config.seed, k, members);
        }
        self.population.reset_to_colony(&self.colony);
        self.population.set_rng_states(rng_states);
        for (i, s) in scratch {
            self.population.apply_scratch(*i as usize, s);
        }
        self.noise.clone_from(noise);
        self.seeder = StreamSeeder::new(config.seed);
        self.event_seeder = event_seeder(config.seed);
        self.init_rng = self.seeder.stream(reserved::INIT);
        self.round = round;
        self.cursor = cursor as usize;
        // The compiled stream is a pure function of (config, seed):
        // magnitudes scale off the *initial* n and demands, not the
        // possibly-shrunk captured colony.
        self.compiled = config
            .timeline
            .compile(config.seed, config.n, &config.demands);
        self.trigger_states = if trigger_states.is_empty() {
            self.compiled.initial_trigger_states()
        } else {
            debug_assert_eq!(trigger_states.len(), self.compiled.triggers.len());
            trigger_states.to_vec()
        };
        self.pre_deficits.clear();
        self.pre_deficits.resize(k, 0);
        self.post_deficits.clear();
        self.post_deficits.resize(k, 0);
        self.next_stream = next_stream;
        self.next_column.reset(n);
        self.round_delta.reset(k);
        self.arena = config.arena.as_ref().map(|a| {
            let mut state = ArenaState::new(a, n, config.seed);
            match arena_columns {
                Some((site, travel)) => state.set_columns(site, travel),
                // Defensive: a checkpoint that carries an arena config
                // always carries its columns; re-derive from the colony
                // if one somehow does not.
                None => state.sync_to_colony(&self.colony),
            }
            parking_lot::RwLock::new(state)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerSpec;
    use crate::observer::{NullObserver, RunSummary};
    use antalloc_core::AntParams;
    use antalloc_noise::NoiseModel;

    fn config() -> SimConfig {
        SimConfig::builder(800, vec![100, 150])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::default()))
            .seed(7)
            .build()
            .expect("valid scenario")
    }

    fn mixed_config() -> SimConfig {
        SimConfig::builder(600, vec![80, 120])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Mix(vec![
                (1.0, ControllerSpec::Ant(AntParams::default())),
                (1.0, ControllerSpec::ExactGreedy(Default::default())),
                (1.0, ControllerSpec::Trivial),
            ]))
            .seed(21)
            .build()
            .expect("valid mixed scenario")
    }

    #[test]
    fn rounds_advance_and_mass_is_conserved() {
        let mut e = config().build();
        let mut obs = NullObserver;
        e.run(10, &mut obs);
        assert_eq!(e.round(), 10);
        assert!(e.colony().recount_consistent());
        let mass: u64 = e.colony().idle_count()
            + (0..e.colony().num_tasks())
                .map(|j| e.colony().load(j))
                .sum::<u64>();
        assert_eq!(mass, 800);
    }

    #[test]
    fn ant_algorithm_fills_tasks_from_idle_start() {
        // From all-idle, every ant joins in phase 1 (the one-off Θ(n)
        // overshoot of Claim 4.5) and the excess then drains at rate
        // γ/c_d per phase (Claim 4.3): γ = 1/16 ⇒ ~300 phases from 400
        // down to ~110. Run well past that and check the band.
        let mut cfg = config();
        cfg.controller = ControllerSpec::Ant(AntParams::new(1.0 / 16.0));
        let mut e = cfg.build();
        let mut obs = RunSummary::new();
        e.run(3000, &mut obs);
        for j in 0..2 {
            let d = e.colony().demands().demand(j) as f64;
            let w = e.colony().load(j) as f64;
            assert!(
                (w - d).abs() < 0.3 * d,
                "task {j}: load {w} demand {d} after {} rounds",
                e.round()
            );
        }
        assert!(obs.rounds() == 3000);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let mut serial = config().build();
        let mut par2 = config().build();
        let mut par4 = config().build();
        let mut o1 = NullObserver;
        serial.run(101, &mut o1);
        // Force the pooled path even at this small size.
        par2.run_parallel_forced(101, 2, &mut o1);
        par4.run_parallel_forced(101, 4, &mut o1);
        assert_eq!(serial.colony().loads(), par2.colony().loads());
        assert_eq!(serial.colony().loads(), par4.colony().loads());
        assert_eq!(serial.colony().assignments(), par2.colony().assignments());
        assert_eq!(serial.colony().assignments(), par4.colony().assignments());
    }

    #[test]
    fn mixed_parallel_is_bit_identical_to_serial() {
        let mut serial = mixed_config().build();
        let mut par = mixed_config().build();
        let mut obs = NullObserver;
        serial.run(80, &mut obs);
        par.run_parallel_forced(80, 3, &mut obs);
        assert_eq!(serial.colony().loads(), par.colony().loads());
        assert_eq!(serial.colony().assignments(), par.colony().assignments());
    }

    #[test]
    fn parallel_observer_sees_same_rounds_as_serial() {
        let mut serial = config().build();
        let mut par = config().build();
        let mut serial_trace = Vec::new();
        let mut par_trace = Vec::new();
        {
            let mut obs = crate::observer::FnObserver::new(|r: &RoundRecord<'_>| {
                serial_trace.push((r.round, r.instant_regret(), r.switches));
            });
            serial.run(60, &mut obs);
        }
        {
            let mut obs = crate::observer::FnObserver::new(|r: &RoundRecord<'_>| {
                par_trace.push((r.round, r.instant_regret(), r.switches));
            });
            par.run_parallel_forced(60, 3, &mut obs);
        }
        assert_eq!(serial_trace, par_trace);
    }

    #[test]
    fn worker_count_never_exceeds_requested_threads() {
        // Regression: with n just above one worker's minimum, the old
        // heuristic `threads.min(n / min).max(2)` ran 2 undersized
        // workers; the pool must instead fall back to serial. We can't
        // observe thread counts directly, but the path must stay
        // bit-identical to serial either way.
        let mut serial = config().build();
        let mut pooled = config().build();
        let mut obs = NullObserver;
        serial.run(20, &mut obs);
        // 800 ants / 8000 min = 0 workers → serial fallback.
        pooled.run_parallel(20, 8, &mut obs);
        assert_eq!(serial.colony().loads(), pooled.colony().loads());
        assert_eq!(serial.colony().assignments(), pooled.colony().assignments());
    }

    #[test]
    fn initial_config_syncs_controllers() {
        let mut e = config().build();
        e.set_initial(&InitialConfig::AllOnTask(1));
        assert_eq!(e.colony().load(1), 800);
        // Controllers believe it too: run a round; no panic, consistent.
        let mut obs = NullObserver;
        e.step(&mut obs);
        assert!(e.colony().recount_consistent());
    }

    #[test]
    fn kills_and_spawns_keep_arrays_aligned() {
        let mut e = config().build();
        let mut obs = NullObserver;
        e.run(50, &mut obs);
        e.perturb(&Perturbation::KillRandom { count: 300 });
        assert_eq!(e.colony().num_ants(), 500);
        e.run(10, &mut obs);
        assert!(e.colony().recount_consistent());
        e.perturb(&Perturbation::Spawn { count: 100 });
        assert_eq!(e.colony().num_ants(), 600);
        e.run(10, &mut obs);
        assert!(e.colony().recount_consistent());
    }

    #[test]
    fn mixed_colony_survives_kill_spawn_scramble() {
        let mut e = mixed_config().build();
        let mut obs = NullObserver;
        e.run(30, &mut obs);
        let before: usize = e.bank_census().iter().map(|b| b.ants).sum();
        assert_eq!(before, 600);
        e.perturb(&Perturbation::KillRandom { count: 200 });
        assert_eq!(e.colony().num_ants(), 400);
        let after: usize = e.bank_census().iter().map(|b| b.ants).sum();
        assert_eq!(after, 400);
        e.perturb(&Perturbation::Spawn { count: 150 });
        assert_eq!(e.colony().num_ants(), 550);
        e.perturb(&Perturbation::Scramble);
        e.run(30, &mut obs);
        assert!(e.colony().recount_consistent());
        // All three banks are still populated after the churn.
        let census = e.bank_census();
        assert_eq!(census.len(), 3);
        assert!(census.iter().all(|b| b.ants > 0), "{census:?}");
    }

    #[test]
    fn scramble_resyncs_controllers() {
        let mut e = config().build();
        let mut obs = NullObserver;
        e.run(20, &mut obs);
        e.perturb(&Perturbation::Scramble);
        assert!(e.colony().recount_consistent());
        e.run(20, &mut obs);
        assert!(e.colony().recount_consistent());
    }

    #[test]
    fn observer_sees_post_decision_state() {
        let mut e = config().build();
        let mut seen = Vec::new();
        let mut obs = crate::observer::FnObserver::new(|r: &RoundRecord<'_>| {
            let load_sum: u64 = r.loads.iter().map(|&w| u64::from(w)).sum();
            seen.push((r.round, load_sum + r.idle));
        });
        e.run(5, &mut obs);
        assert_eq!(seen.len(), 5);
        for (round, mass) in seen {
            assert!((1..=5).contains(&round));
            assert_eq!(mass, 800);
        }
    }

    #[test]
    fn triggered_runs_are_bit_identical_serial_vs_parallel() {
        use antalloc_env::Condition;

        // A repeating stampede that strikes whenever the colony has
        // settled for 8 rounds: the firing rounds are state-dependent,
        // so the parallel path must discover them mid-segment. Starting
        // saturated puts the colony inside the trigger band right away.
        let cfg = SimConfig::builder(900, vec![120, 180])
            .noise(NoiseModel::Sigmoid { lambda: 2.0 })
            .controller(ControllerSpec::Ant(AntParams::default()))
            .seed(17)
            .initial(InitialConfig::SaturatedPlus { extra: 2 })
            .trigger(antalloc_env::Trigger {
                when: Condition::RegretBelow {
                    threshold: 60,
                    for_rounds: 8,
                },
                event: Event::StampedeTo(0),
                cooldown: 40,
                max_firings: 0,
            })
            .build()
            .unwrap();
        let mut serial = cfg.build();
        let mut parallel = cfg.build();
        let mut serial_trace = Vec::new();
        let mut parallel_trace = Vec::new();
        {
            let mut obs = crate::observer::FnObserver::new(|r: &RoundRecord<'_>| {
                serial_trace.push((r.round, r.instant_regret(), r.switches));
            });
            serial.run(400, &mut obs);
        }
        {
            let mut obs = crate::observer::FnObserver::new(|r: &RoundRecord<'_>| {
                parallel_trace.push((r.round, r.instant_regret(), r.switches));
            });
            parallel.run_parallel_forced(400, 3, &mut obs);
        }
        assert_eq!(serial_trace, parallel_trace);
        assert_eq!(
            serial.colony().assignments(),
            parallel.colony().assignments()
        );
        assert_eq!(serial.trigger_states, parallel.trigger_states);
        // The trigger really struck (otherwise this test is vacuous).
        assert!(serial.trigger_states[0].firings > 0, "trigger never fired");
    }

    #[test]
    fn generated_timelines_are_deterministic_and_seed_dependent() {
        use antalloc_env::{GenShock, TimelineGen};

        let cfg = |seed| {
            SimConfig::builder(600, vec![80, 120])
                .noise(NoiseModel::Sigmoid { lambda: 2.0 })
                .controller(ControllerSpec::Ant(AntParams::default()))
                .seed(seed)
                .generate(TimelineGen {
                    start: 1,
                    until: 150,
                    mean_gap: 30.0,
                    shock: GenShock::Kill {
                        min_frac: 0.05,
                        max_frac: 0.1,
                    },
                })
                .build()
                .unwrap()
        };
        let mut obs = NullObserver;
        let mut a = cfg(5).build();
        let mut b = cfg(5).build();
        let mut par = cfg(5).build();
        a.run(200, &mut obs);
        b.run(200, &mut obs);
        par.run_parallel_forced(200, 4, &mut obs);
        assert_eq!(a.colony().assignments(), b.colony().assignments());
        assert_eq!(a.colony().assignments(), par.colony().assignments());
        // The generated kills really shrank the colony, and a different
        // master seed expands a different schedule.
        assert!(a.colony().num_ants() < 600, "no generated kill fired");
        let timeline = &cfg(5).timeline;
        assert_ne!(
            timeline.compile(5, 600, &[80, 120]),
            timeline.compile(6, 600, &[80, 120]),
        );
    }

    #[test]
    fn mixed_census_matches_quotas() {
        let e = mixed_config().build();
        let census = e.bank_census();
        assert_eq!(census.len(), 3);
        assert_eq!(census.iter().map(|b| b.ants).sum::<usize>(), 600);
        for b in &census {
            assert_eq!(b.ants, 200, "equal weights split 600 three ways");
        }
    }
}
