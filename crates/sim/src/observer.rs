//! Per-round measurement hooks.

use antalloc_metrics::{RegretTracker, SwitchStats, Welford};

use crate::engine::RoundRecord;

/// A per-round measurement hook driven by the engines.
pub trait Observer {
    /// Called once after every completed round.
    fn on_round(&mut self, record: &RoundRecord<'_>);
}

impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        (**self).on_round(record)
    }
}

/// Observes nothing (the fastest observer).
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_round(&mut self, _record: &RoundRecord<'_>) {}
}

/// Adapts a closure into an [`Observer`].
pub struct FnObserver<F: FnMut(&RoundRecord<'_>)> {
    f: F,
}

impl<F: FnMut(&RoundRecord<'_>)> FnObserver<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: FnMut(&RoundRecord<'_>)> Observer for FnObserver<F> {
    #[inline]
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        (self.f)(record)
    }
}

/// Chains two observers.
pub struct Both<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Both<A, B> {
    #[inline]
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.0.on_round(record);
        self.1.on_round(record);
    }
}

/// Counts rounds and accumulates total/average regret — the minimal
/// summary nearly every test wants.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    rounds: u64,
    total_regret: u128,
    max_instant_regret: u64,
}

impl RunSummary {
    /// A fresh summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a summary from its accumulated counters — the
    /// decode half of the sweep store's outcome codec. Pairs with the
    /// accessors; observing further rounds continues normally.
    pub fn from_parts(rounds: u64, total_regret: u128, max_instant_regret: u64) -> Self {
        Self {
            rounds,
            total_regret,
            max_instant_regret,
        }
    }

    /// Rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total regret `R(t)`.
    pub fn total_regret(&self) -> u128 {
        self.total_regret
    }

    /// Average regret per round.
    pub fn average_regret(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_regret as f64 / self.rounds as f64
        }
    }

    /// Largest single-round regret.
    pub fn max_instant_regret(&self) -> u64 {
        self.max_instant_regret
    }
}

impl Observer for RunSummary {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        let r = record.instant_regret();
        self.rounds += 1;
        self.total_regret += u128::from(r);
        self.max_instant_regret = self.max_instant_regret.max(r);
    }
}

/// The standard measurement bundle used by the experiment benches:
/// regret decomposition, switch statistics, and a Welford over the
/// instantaneous regret.
pub struct BasicObserver {
    /// Regret decomposition tracker.
    pub regret: RegretTracker,
    /// Switch statistics.
    pub switches: SwitchStats,
    /// Distribution of the instantaneous regret (post-warmup rounds).
    pub instant: Welford,
    warmup: u64,
    seen: u64,
}

impl BasicObserver {
    /// Bundles trackers with a shared warmup (rounds excluded from all).
    pub fn new(gamma: f64, c_s: f64, warmup: u64) -> Self {
        Self {
            regret: RegretTracker::new(gamma, c_s, warmup),
            switches: SwitchStats::new(),
            instant: Welford::new(),
            warmup,
            seen: 0,
        }
    }
}

impl Observer for BasicObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.regret.record(record.deficits, record.demands);
        self.seen += 1;
        if self.seen > self.warmup {
            self.switches.record(record.switches);
            self.instant.push(record.instant_regret() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record<'a>(
        deficits: &'a [i64],
        demands: &'a [u64],
        loads: &'a [u32],
        switches: u64,
    ) -> RoundRecord<'a> {
        RoundRecord {
            round: 1,
            deficits,
            demands,
            loads,
            idle: 0,
            switches,
        }
    }

    #[test]
    fn run_summary_accumulates() {
        let mut s = RunSummary::new();
        s.on_round(&record(&[2, -3], &[10, 10], &[8, 13], 1));
        s.on_round(&record(&[1, 0], &[10, 10], &[9, 10], 0));
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.total_regret(), 6);
        assert_eq!(s.max_instant_regret(), 5);
        assert!((s.average_regret() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn basic_observer_respects_warmup() {
        let mut b = BasicObserver::new(0.05, 2.5, 1);
        b.on_round(&record(&[100], &[100], &[0], 50));
        b.on_round(&record(&[2], &[100], &[98], 3));
        assert_eq!(b.regret.breakdown().rounds, 1);
        assert_eq!(b.switches.total(), 3);
        assert_eq!(b.instant.count(), 1);
    }

    #[test]
    fn both_fans_out() {
        let mut pair = Both(RunSummary::new(), RunSummary::new());
        pair.on_round(&record(&[1], &[10], &[9], 0));
        assert_eq!(pair.0.rounds(), 1);
        assert_eq!(pair.1.rounds(), 1);
    }
}
