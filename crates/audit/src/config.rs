//! `audit.toml` loading.
//!
//! The analyzer is std-only, so this module carries a tiny TOML-subset
//! reader sufficient for the audit config: `[section]` headers and
//! `key = value` pairs where a value is a string, an integer (decimal
//! or `0x` hex, `_` separators), a boolean, or a (possibly multi-line)
//! array of strings. That subset is deliberately smaller than the
//! scenario codec in `antalloc-sim` — the audit binary must not depend
//! on the crates it audits.

use std::collections::BTreeMap;
use std::path::Path;

/// The audit configuration, normally read from `audit.toml` at the
/// workspace root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate names (as path segments under `crates/`) whose `src/`
    /// trees are on the simulation path: the nondeterminism catalog
    /// applies in full.
    pub sim_path_crates: Vec<String>,
    /// Crates with the relaxed profile (tests/benches/examples);
    /// `shims/*` crates are always relaxed for path rules.
    pub relaxed_crates: Vec<String>,
    /// Kernel hot files: every numeric `as` cast must be a registered
    /// widening idiom or carry a pragma.
    pub cast_audit_files: Vec<String>,
    /// Engine step/apply paths: `unwrap`/`expect`/`panic!` need a
    /// pragma outside tests.
    pub panic_path_files: Vec<String>,
    /// The reserved-stream registry source file.
    pub stream_registry: String,
    /// Reserved ids must be `>=` this bound (ant indices grow from 0).
    pub ant_index_ceiling: u64,
    /// The checkpoint codec source carrying `const VERSION`.
    pub checkpoint_source: String,
    /// The checkpoint format doc that must state the same version.
    pub checkpoint_doc: String,
    /// Docs that must table every reserved stream.
    pub stream_table_docs: Vec<String>,
    /// `crate name -> reason` entries allowed to omit
    /// `#![forbid(unsafe_code)]`.
    pub unsafe_allowlist: BTreeMap<String, String>,
}

/// A config-file problem (I/O or parse).
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Reads and parses `path`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Parses config text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let raw = parse_toml(text)?;
        let get_list = |section: &str, key: &str| -> Vec<String> {
            match raw.get(&(section.to_string(), key.to_string())) {
                Some(Value::Array(a)) => a.clone(),
                _ => Vec::new(),
            }
        };
        let get_str = |section: &str, key: &str| -> Option<String> {
            match raw.get(&(section.to_string(), key.to_string())) {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let get_int = |section: &str, key: &str| -> Option<u64> {
            match raw.get(&(section.to_string(), key.to_string())) {
                Some(Value::Int(v)) => Some(*v),
                _ => None,
            }
        };
        let mut unsafe_allowlist = BTreeMap::new();
        for ((section, key), value) in &raw {
            if section == "unsafe-allowlist" {
                if let Value::Str(reason) = value {
                    unsafe_allowlist.insert(key.clone(), reason.clone());
                }
            }
        }
        Ok(Config {
            sim_path_crates: get_list("paths", "sim-path-crates"),
            relaxed_crates: get_list("paths", "relaxed-crates"),
            cast_audit_files: get_list("paths", "cast-audit-files"),
            panic_path_files: get_list("paths", "panic-path-files"),
            stream_registry: get_str("streams", "registry")
                .ok_or_else(|| ConfigError("missing [streams] registry".into()))?,
            ant_index_ceiling: get_int("streams", "ant-index-ceiling")
                .ok_or_else(|| ConfigError("missing [streams] ant-index-ceiling".into()))?,
            checkpoint_source: get_str("consistency", "checkpoint-source")
                .ok_or_else(|| ConfigError("missing [consistency] checkpoint-source".into()))?,
            checkpoint_doc: get_str("consistency", "checkpoint-doc")
                .ok_or_else(|| ConfigError("missing [consistency] checkpoint-doc".into()))?,
            stream_table_docs: get_list("consistency", "stream-table-docs"),
            unsafe_allowlist,
        })
    }
}

#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Int(u64),
    Array(Vec<String>),
}

type Table = BTreeMap<(String, String), Value>;

fn parse_toml(text: &str) -> Result<Table, ConfigError> {
    let mut out = Table::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, line)) = lines.next() {
        let line = strip_comment(line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| ConfigError(format!("line {}: unclosed section", ln + 1)))?;
            section = name.trim().to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| ConfigError(format!("line {}: expected key = value", ln + 1)))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .unwrap_or(key)
            .to_string();
        let mut value = value.trim().to_string();
        // Multi-line arrays: keep consuming lines until the bracket closes.
        if value.starts_with('[') {
            while !value.ends_with(']') {
                let (ln2, more) = lines
                    .next()
                    .ok_or_else(|| ConfigError(format!("line {}: unclosed array", ln + 1)))?;
                let more = strip_comment(more).trim().to_string();
                let _ = ln2;
                value.push(' ');
                value.push_str(&more);
            }
        }
        out.insert((section.clone(), key), parse_value(&value, ln + 1)?);
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside a quoted string starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str, ln: usize) -> Result<Value, ConfigError> {
    if let Some(body) = v.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| ConfigError(format!("line {ln}: unclosed array")))?;
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item, ln)? {
                Value::Str(s) => items.push(s),
                _ => return Err(ConfigError(format!("line {ln}: arrays hold strings only"))),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(body) = v.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| ConfigError(format!("line {ln}: unclosed string")))?;
        return Ok(Value::Str(body.to_string()));
    }
    let digits = v.replace('_', "");
    let parsed = if let Some(hex) = digits.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        digits.parse::<u64>()
    };
    parsed
        .map(Value::Int)
        .map_err(|_| ConfigError(format!("line {ln}: cannot parse value `{v}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_schema() {
        let cfg = Config::parse(
            r##"
# comment
[paths]
sim-path-crates = ["core", "rng"]
cast-audit-files = [
    "crates/core/src/ant_bank.rs", # trailing comment
    "crates/rng/src/uniform.rs",
]
panic-path-files = []
relaxed-crates = ["bench"]

[streams]
registry = "crates/rng/src/stream.rs"
ant-index-ceiling = 0xFFFF_FFFF_0000_0000

[consistency]
checkpoint-source = "crates/sim/src/checkpoint.rs"
checkpoint-doc = "docs/CHECKPOINTS.md"
stream-table-docs = ["docs/ARCHITECTURE.md"]

[unsafe-allowlist]
"shims/example" = "needs raw parts for the FFI stand-in"
"##,
        )
        .unwrap();
        assert_eq!(cfg.sim_path_crates, ["core", "rng"]);
        assert_eq!(cfg.cast_audit_files.len(), 2);
        assert_eq!(cfg.ant_index_ceiling, 0xFFFF_FFFF_0000_0000);
        assert_eq!(
            cfg.unsafe_allowlist.get("shims/example").unwrap(),
            "needs raw parts for the FFI stand-in"
        );
    }

    #[test]
    fn missing_required_key_errors() {
        assert!(Config::parse("[paths]\n").is_err());
    }
}
