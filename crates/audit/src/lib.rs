//! `antalloc-audit`: the workspace determinism & safety analyzer.
//!
//! The repo's value proposition is the **bit-identity contract** —
//! serial == `run_parallel` == checkpoint-restore == per-ant reference.
//! Property tests enforce it dynamically, but a dynamic test only
//! catches a regression it happens to sample. This crate enforces the
//! contract's *preconditions* statically: it lexes every workspace
//! source file (masking comments and string literals so patterns never
//! fire on prose) and runs a rule catalog over the masked code,
//! reporting `file:line` diagnostics and exiting nonzero for CI.
//!
//! The catalog, the `audit.toml` config schema, and the
//! `// audit:allow(rule): reason` pragma syntax are documented in
//! `docs/DETERMINISM.md`. Rule families:
//!
//! * **nondeterminism sources** (`nondet-*`) — default-hasher
//!   collections, wall-clock reads, environment reads, raw thread
//!   spawns in sim-path crates;
//! * **reserved-stream discipline** (`stream-*`) — every
//!   `StreamSeeder::stream(..)` call passes an ant-index expression or
//!   a registered `reserved::` constant; registry ids unique and above
//!   the ant-index ceiling;
//! * **cast audit** (`cast`) — numeric `as` casts in kernel hot files
//!   must be registered widening idioms or carry a pragma;
//! * **unsafe/panic hygiene** (`forbid-unsafe`, `panic-path`) —
//!   `#![forbid(unsafe_code)]` in every crate root, no
//!   `unwrap`/`expect`/`panic!` in engine step/apply paths;
//! * **cross-file consistency** (`doc-version`, `doc-stream-table`) —
//!   the checkpoint format version matches `docs/CHECKPOINTS.md`, and
//!   every reserved stream is tabled in the architecture docs.
//!
//! Pragmas themselves are audited: an unknown rule name or a missing
//! reason is `bad-pragma`, and a pragma that suppresses nothing is
//! `unused-pragma` — suppressions cannot silently rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use config::Config;
use lexer::Lexed;
use walk::FileInfo;

/// One `file:line` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (usable in an allow pragma).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Every rule name a pragma may reference.
pub const RULES: &[&str] = &[
    "nondet-collection",
    "nondet-time",
    "nondet-env",
    "nondet-thread",
    "stream-literal",
    "stream-unknown-const",
    "stream-registry",
    "cast",
    "forbid-unsafe",
    "panic-path",
    "doc-version",
    "doc-stream-table",
];

/// Sink for rule findings that honors allow pragmas.
pub struct Emitter<'a> {
    file: &'a FileInfo,
    lexed: &'a Lexed,
    diags: Vec<Diagnostic>,
}

impl<'a> Emitter<'a> {
    /// Creates an emitter for one lexed file.
    pub fn new(file: &'a FileInfo, lexed: &'a Lexed) -> Self {
        Emitter {
            file,
            lexed,
            diags: Vec::new(),
        }
    }

    /// Records a finding at 1-based `line` unless a pragma covers it.
    pub fn emit(&mut self, rule: &str, line: usize, message: String) {
        if self.suppressed(rule, line) {
            return;
        }
        self.diags.push(Diagnostic {
            rule: rule.to_string(),
            path: self.file.rel.clone(),
            line,
            message,
        });
    }

    /// A pragma suppresses findings on its own line and, when it sits
    /// on a comment-only line, on the code line(s) directly below the
    /// comment block.
    fn suppressed(&self, rule: &str, line: usize) -> bool {
        let mut candidates = vec![line];
        // Walk up through the contiguous comment-only block above.
        let mut l = line;
        while l > 1 {
            l -= 1;
            let prev = &self.lexed.lines[l - 1];
            let comment_only = prev.code.trim().is_empty() && !prev.raw.trim().is_empty();
            if !comment_only {
                break;
            }
            candidates.push(l);
        }
        for p in &self.lexed.pragmas {
            if p.rule == rule && candidates.contains(&p.line) {
                p.used.set(true);
                return true;
            }
        }
        false
    }

    /// Finishes the file: validates pragmas, returns the findings.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        for p in &self.lexed.pragmas {
            let on_test_line = self
                .lexed
                .lines
                .get(p.line - 1)
                .map(|l| l.in_test)
                .unwrap_or(false);
            if on_test_line {
                continue;
            }
            if !RULES.contains(&p.rule.as_str()) {
                self.diags.push(Diagnostic {
                    rule: "bad-pragma".into(),
                    path: self.file.rel.clone(),
                    line: p.line,
                    message: format!("unknown rule `{}` in allow pragma", p.rule),
                });
            } else if p.reason.is_empty() {
                self.diags.push(Diagnostic {
                    rule: "bad-pragma".into(),
                    path: self.file.rel.clone(),
                    line: p.line,
                    message: format!("allow({}) pragma needs a `: reason`", p.rule),
                });
            } else if !p.used.get() && !self.file.relaxed {
                self.diags.push(Diagnostic {
                    rule: "unused-pragma".into(),
                    path: self.file.rel.clone(),
                    line: p.line,
                    message: format!("allow({}) pragma suppresses nothing — remove it", p.rule),
                });
            }
        }
        self.diags
    }
}

/// Runs every per-file rule over one source text.
///
/// `registry` is the parsed reserved-stream registry (used by the
/// stream rules); pass an empty slice to skip `reserved::` validation.
pub fn audit_source(
    info: &FileInfo,
    text: &str,
    cfg: &Config,
    registry: &[rules::streams::ReservedConst],
) -> Vec<Diagnostic> {
    let lexed = lexer::lex(text);
    let mut emitter = Emitter::new(info, &lexed);
    rules::nondet::check(info, &lexed, cfg, &mut emitter);
    rules::streams::check_calls(info, &lexed, registry, &mut emitter);
    rules::casts::check(info, &lexed, cfg, &mut emitter);
    rules::hygiene::check(info, &lexed, cfg, &mut emitter);
    emitter.finish()
}

/// Audits the whole workspace rooted at `root`.
///
/// Runs the registry checks, every per-file rule over every workspace
/// source, and the cross-file consistency checks. Diagnostics come back
/// sorted by path and line.
pub fn run(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();

    let registry_path = root.join(&cfg.stream_registry);
    let registry_text = std::fs::read_to_string(&registry_path)
        .map_err(|e| format!("cannot read stream registry {}: {e}", cfg.stream_registry))?;
    let registry = rules::streams::check_registry(&registry_text, cfg, &mut diags);

    for path in walk::workspace_files(root) {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "file outside root".to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let info = FileInfo::classify(&rel, cfg);
        let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {rel}: {e}"))?;
        diags.extend(audit_source(&info, &text, cfg, &registry));
    }

    rules::consistency::check(root, cfg, &registry, &mut diags);

    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(diags)
}
