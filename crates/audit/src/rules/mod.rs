//! The rule catalog. Each submodule implements one family; shared
//! text-scanning helpers live here.

pub mod casts;
pub mod consistency;
pub mod hygiene;
pub mod nondet;
pub mod streams;

/// Yields the byte offsets of word-bounded occurrences of `pat` in
/// `code`: the characters adjacent to the match must not be
/// identifier characters.
pub fn find_word(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(pat) {
        let at = from + at;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + pat.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident(after) {
            out.push(at);
        }
        from = at + pat.len();
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}
