//! Unsafe/panic hygiene.
//!
//! * Every crate root carries `#![forbid(unsafe_code)]` unless the
//!   crate is allowlisted (with a recorded reason) in `audit.toml` —
//!   and an allowlist entry for a crate that *does* forbid is itself
//!   flagged, so the list cannot rot.
//! * Engine step/apply paths must not `unwrap`/`expect`/`panic!`: a
//!   panic mid-round tears down a worker while the colony is
//!   half-stepped, and checkpoint-bearing services must degrade to
//!   errors, not aborts. Sites whose invariants genuinely cannot fail
//!   record that as an `// audit:allow(panic-path): reason` pragma.

use crate::config::Config;
use crate::lexer::Lexed;
use crate::walk::FileInfo;
use crate::Emitter;

const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap"),
    (".expect(", "expect"),
    ("panic!", "panic!"),
    ("unreachable!", "unreachable!"),
    ("todo!", "todo!"),
    ("unimplemented!", "unimplemented!"),
];

/// Runs both hygiene checks over one file.
pub fn check(info: &FileInfo, lexed: &Lexed, cfg: &Config, emitter: &mut Emitter<'_>) {
    if info.is_crate_root {
        check_forbid(info, lexed, cfg, emitter);
    }
    if cfg.panic_path_files.contains(&info.rel) {
        check_panics(lexed, emitter);
    }
}

fn check_forbid(info: &FileInfo, lexed: &Lexed, cfg: &Config, emitter: &mut Emitter<'_>) {
    let has_forbid = lexed
        .lines
        .iter()
        .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    let allowlisted = cfg.unsafe_allowlist.contains_key(&info.crate_name);
    if !has_forbid && !allowlisted {
        emitter.emit(
            "forbid-unsafe",
            1,
            format!(
                "crate root of `{}` is missing `#![forbid(unsafe_code)]` (allowlist it in \
                 audit.toml with a reason if unsafe is genuinely required)",
                info.crate_name
            ),
        );
    }
    if has_forbid && allowlisted {
        emitter.emit(
            "forbid-unsafe",
            1,
            format!(
                "crate `{}` forbids unsafe but still has an audit.toml unsafe-allowlist entry — \
                 remove the stale entry",
                info.crate_name
            ),
        );
    }
}

fn check_panics(lexed: &Lexed, emitter: &mut Emitter<'_>) {
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, name) in PANIC_PATTERNS {
            if line.code.contains(pat) {
                emitter.emit(
                    "panic-path",
                    i + 1,
                    format!(
                        "`{name}` in an engine step/apply path — return an error, or pragma \
                         with the invariant that makes it unreachable"
                    ),
                );
            }
        }
    }
}
