//! The cast audit for kernel hot files.
//!
//! A silently truncating or wrapping `as` cast inside a sampling or
//! bank kernel is exactly the kind of bug the parity tests only catch
//! when a colony gets big enough: everything agrees at test sizes and
//! diverges at 2^32 ants or at probabilities below one ulp. In the
//! configured hot files, every numeric `as` cast must therefore be one
//! of:
//!
//! * a **registered widening idiom** — the operand's source type is
//!   syntactically evident and the target strictly contains it (e.g.
//!   `mask.count_ones() as usize`: `u32 → usize`);
//! * rewritten as `From`/`try_from`/a documented helper (no `as`, so
//!   nothing fires); or
//! * carrying an `// audit:allow(cast): reason` pragma that records
//!   why the cast cannot lose bits.

use crate::config::Config;
use crate::lexer::Lexed;
use crate::walk::FileInfo;
use crate::Emitter;

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Operand tails whose source type is syntactically certain: the bit
/// ops return `u32`, so these targets strictly widen.
const WIDENING_IDIOMS: &[(&str, &[&str])] = &[
    (
        ".count_ones()",
        &["u32", "u64", "u128", "usize", "i64", "i128", "f64"],
    ),
    (
        ".leading_zeros()",
        &["u32", "u64", "u128", "usize", "i64", "i128", "f64"],
    ),
    (
        ".trailing_zeros()",
        &["u32", "u64", "u128", "usize", "i64", "i128", "f64"],
    ),
];

/// Scans one hot file for unaudited numeric `as` casts.
pub fn check(info: &FileInfo, lexed: &Lexed, cfg: &Config, emitter: &mut Emitter<'_>) {
    if !cfg.cast_audit_files.contains(&info.rel) {
        return;
    }
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (at, target) in as_casts(&line.code) {
            let operand = line.code[..at].trim_end();
            let widening = WIDENING_IDIOMS
                .iter()
                .any(|(tail, targets)| operand.ends_with(tail) && targets.contains(&target));
            if !widening {
                emitter.emit(
                    "cast",
                    i + 1,
                    format!(
                        "numeric `as {target}` cast in a kernel hot file — widen via \
                         `From`/`try_from`, use a documented helper, or pragma with the reason \
                         it cannot lose bits"
                    ),
                );
            }
        }
    }
}

/// Yields `(byte offset of the `as` keyword, target type)` for every
/// numeric `as` cast on a masked line.
fn as_casts(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for at in super::find_word(code, "as") {
        let rest = code[at + 2..].trim_start();
        if let Some(ty) = NUMERIC_TYPES.iter().find(|t| {
            rest.starts_with(**t)
                && !rest[t.len()..]
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_alphanumeric() || c == '_')
                    .unwrap_or(false)
        }) {
            out.push((at, *ty));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_casts_and_widening_idioms() {
        assert_eq!(as_casts("let x = y as u32;"), vec![(10, "u32")]);
        assert_eq!(as_casts("let x = y as usize;"), vec![(10, "usize")]);
        assert!(as_casts("let x = y.as_ref();").is_empty());
        assert!(as_casts("let x = base;").is_empty());
        // u1288 is not a numeric type token.
        assert!(as_casts("let x = y as u1288;").is_empty());
    }
}
