//! Reserved-stream discipline.
//!
//! Determinism rests on every randomness consumer owning its own
//! stream. Two static guarantees keep the namespace sound:
//!
//! 1. **Call discipline** — every `StreamSeeder::stream(..)` call in
//!    non-test code passes either an ant-index *expression* or a named
//!    constant from the `reserved` registry. A bare numeric literal is
//!    an unregistered stream id: the next subsystem to pick the same
//!    number silently correlates two consumers.
//! 2. **Registry soundness** — registered ids are unique and sit at or
//!    above the documented ant-index ceiling, so they can never collide
//!    with an ant stream.

use crate::config::Config;
use crate::lexer::{lex, Lexed};
use crate::walk::FileInfo;
use crate::{Diagnostic, Emitter};

/// One `pub const NAME: u64 = ..;` entry from the `reserved` module.
#[derive(Debug, Clone)]
pub struct ReservedConst {
    /// Constant name (`ENGINE`, `NOISE`, …).
    pub name: String,
    /// Evaluated id.
    pub value: u64,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// Parses the registry source and validates uniqueness + ceiling,
/// pushing `stream-registry` diagnostics against the registry file.
pub fn check_registry(text: &str, cfg: &Config, diags: &mut Vec<Diagnostic>) -> Vec<ReservedConst> {
    let lexed = lex(text);
    let consts = parse_registry(&lexed);
    let rel = cfg.stream_registry.clone();
    for (i, a) in consts.iter().enumerate() {
        if a.value < cfg.ant_index_ceiling {
            diags.push(Diagnostic {
                rule: "stream-registry".into(),
                path: rel.clone(),
                line: a.line,
                message: format!(
                    "reserved stream `{}` = {:#x} sits below the ant-index ceiling {:#x}",
                    a.name, a.value, cfg.ant_index_ceiling
                ),
            });
        }
        for b in &consts[..i] {
            if a.value == b.value {
                diags.push(Diagnostic {
                    rule: "stream-registry".into(),
                    path: rel.clone(),
                    line: a.line,
                    message: format!(
                        "reserved streams `{}` and `{}` share id {:#x}",
                        b.name, a.name, a.value
                    ),
                });
            }
        }
    }
    if consts.is_empty() {
        diags.push(Diagnostic {
            rule: "stream-registry".into(),
            path: rel,
            line: 1,
            message: "no `pub const NAME: u64 = ..;` entries found in the reserved module".into(),
        });
    }
    consts
}

/// Extracts `pub const NAME: u64 = EXPR;` entries (masked text).
fn parse_registry(lexed: &Lexed) -> Vec<ReservedConst> {
    let mut out = Vec::new();
    for (i, line) in lexed.lines.iter().enumerate() {
        let code = line.code.trim();
        let Some(rest) = code.strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once(':') else {
            continue;
        };
        if !rest.trim_start().starts_with("u64") {
            continue;
        }
        let Some((_, expr)) = rest.split_once('=') else {
            continue;
        };
        let expr = expr.trim().trim_end_matches(';').trim();
        if let Some(value) = eval_u64(expr) {
            out.push(ReservedConst {
                name: name.trim().to_string(),
                value,
                line: i + 1,
            });
        }
    }
    out
}

/// Evaluates the tiny const-expression language the registry uses:
/// `u64::MAX`, integer literals, and left-to-right `-` chains.
fn eval_u64(expr: &str) -> Option<u64> {
    let mut total: Option<u64> = None;
    for term in expr.split('-') {
        let term = term.trim();
        let v = if term == "u64::MAX" {
            u64::MAX
        } else {
            let digits = term.replace('_', "");
            if let Some(hex) = digits.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()?
            } else {
                digits.parse().ok()?
            }
        };
        total = Some(match total {
            None => v,
            Some(t) => t.checked_sub(v)?,
        });
    }
    total
}

/// Checks every `.stream(..)` call site in one file.
pub fn check_calls(
    info: &FileInfo,
    lexed: &Lexed,
    registry: &[ReservedConst],
    emitter: &mut Emitter<'_>,
) {
    if info.relaxed {
        return;
    }
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut from = 0;
        while let Some(at) = line.code[from..].find(".stream(") {
            let at = from + at;
            from = at + ".stream(".len();
            let arg = match call_argument(lexed, i, at + ".stream(".len()) {
                Some(a) => a,
                None => continue,
            };
            inspect_argument(&arg, i + 1, registry, emitter);
        }
    }
}

/// Extracts the argument text of a call whose open paren has just been
/// consumed at `(line_ix, col)`; spans up to 8 masked lines.
fn call_argument(lexed: &Lexed, line_ix: usize, col: usize) -> Option<String> {
    let mut depth = 1i32;
    let mut arg = String::new();
    for (k, line) in lexed.lines.iter().enumerate().skip(line_ix).take(8) {
        let start = if k == line_ix { col } else { 0 };
        for c in line.code.chars().skip(start) {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(arg);
                    }
                }
                _ => {}
            }
            arg.push(c);
        }
        arg.push(' ');
    }
    None
}

fn inspect_argument(arg: &str, line: usize, registry: &[ReservedConst], emitter: &mut Emitter<'_>) {
    let trimmed = arg.trim();
    if is_integer_literal(trimmed) {
        emitter.emit(
            "stream-literal",
            line,
            format!(
                "`.stream({trimmed})` passes a raw numeric id — use an ant-index expression or \
                 register a named constant in the `reserved` module"
            ),
        );
        return;
    }
    let mut from = 0;
    while let Some(at) = trimmed[from..].find("reserved::") {
        let at = from + at + "reserved::".len();
        let name: String = trimmed[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        from = at + name.len().max(1);
        if !name.is_empty() && !registry.is_empty() && !registry.iter().any(|c| c.name == name) {
            emitter.emit(
                "stream-unknown-const",
                line,
                format!("`reserved::{name}` is not declared in the stream registry"),
            );
        }
    }
}

fn is_integer_literal(s: &str) -> bool {
    let s = s
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("usize");
    let s = s.replace('_', "");
    let body = s.strip_prefix("0x").unwrap_or(&s);
    !body.is_empty()
        && body
            .chars()
            .all(|c| c.is_ascii_digit() || (s.starts_with("0x") && c.is_ascii_hexdigit()))
}
