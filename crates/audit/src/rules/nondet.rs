//! Nondeterminism sources forbidden in sim-path crates.
//!
//! Anything whose behavior varies across runs, machines, or thread
//! schedules breaks the bit-identity contract if it reaches a
//! simulation decision: default-hasher collections iterate in a
//! per-process-random order, wall clocks and environment variables
//! differ between hosts, and a raw `thread::spawn` escapes the
//! engine's deterministic partitioning. Test modules and relaxed
//! crates (tests/benches/examples/shims) are exempt.

use super::find_word;
use crate::config::Config;
use crate::lexer::Lexed;
use crate::walk::FileInfo;
use crate::Emitter;

const PATTERNS: &[(&str, &str, &str)] = &[
    (
        "HashMap",
        "nondet-collection",
        "default-hasher `HashMap` iterates in arbitrary order — use `BTreeMap` (or a seeded hasher behind a pragma)",
    ),
    (
        "HashSet",
        "nondet-collection",
        "default-hasher `HashSet` iterates in arbitrary order — use `BTreeSet` (or a seeded hasher behind a pragma)",
    ),
    (
        "Instant::now",
        "nondet-time",
        "wall-clock reads are nondeterministic — simulation state must advance on rounds, not time",
    ),
    (
        "SystemTime",
        "nondet-time",
        "wall-clock reads are nondeterministic — simulation state must advance on rounds, not time",
    ),
    (
        "env::var",
        "nondet-env",
        "environment reads make a run depend on the host — thread configuration through `SimConfig`",
    ),
    (
        "env::args",
        "nondet-env",
        "process arguments make a run depend on the host — thread configuration through `SimConfig`",
    ),
    (
        "thread::spawn",
        "nondet-thread",
        "raw thread spawns escape the engine's deterministic partitioning — use the scoped worker pool",
    ),
];

/// Scans one file for forbidden nondeterminism sources.
pub fn check(info: &FileInfo, lexed: &Lexed, cfg: &Config, emitter: &mut Emitter<'_>) {
    if info.relaxed || !cfg.sim_path_crates.contains(&info.crate_name) {
        return;
    }
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, rule, msg) in PATTERNS {
            if !find_word(&line.code, pat).is_empty() {
                emitter.emit(rule, i + 1, format!("`{pat}`: {msg}"));
            }
        }
    }
}
