//! Cross-file consistency checks.
//!
//! Two facts live in both code and docs and have historically drifted
//! in projects like this one:
//!
//! * the **checkpoint format version** — `const VERSION` in the
//!   checkpoint codec vs the "current version (vN)" statement and the
//!   version-history table column in `docs/CHECKPOINTS.md`;
//! * the **reserved-stream registry** — every constant in the `rng`
//!   registry must appear as a table row in each configured doc, so a
//!   new subsystem stream cannot land undocumented.

use std::path::Path;

use crate::config::Config;
use crate::rules::streams::ReservedConst;
use crate::Diagnostic;

/// Runs all cross-file checks, pushing diagnostics into `diags`.
pub fn check(root: &Path, cfg: &Config, registry: &[ReservedConst], diags: &mut Vec<Diagnostic>) {
    check_version(root, cfg, diags);
    check_stream_tables(root, cfg, registry, diags);
}

fn check_version(root: &Path, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let Some(source) = read(root, &cfg.checkpoint_source, diags) else {
        return;
    };
    let code_version = source.lines().enumerate().find_map(|(i, l)| {
        let rest = l.trim().strip_prefix("const VERSION: u32 =")?;
        let v: u32 = rest.trim().trim_end_matches(';').parse().ok()?;
        Some((i + 1, v))
    });
    let Some((src_line, version)) = code_version else {
        diags.push(diag(
            "doc-version",
            &cfg.checkpoint_source,
            1,
            "no `const VERSION: u32 = ..;` declaration found".into(),
        ));
        return;
    };
    let Some(doc) = read(root, &cfg.checkpoint_doc, diags) else {
        return;
    };
    // The doc must state the current version in prose…
    let marker = format!("current version (v{version})");
    if !doc.contains(&marker) {
        let line = find_line(&doc, "current version (v").unwrap_or(1);
        diags.push(diag(
            "doc-version",
            &cfg.checkpoint_doc,
            line,
            format!(
                "checkpoint codec declares format v{version} ({}:{src_line}) but the doc does \
                 not say \"{marker}\"",
                cfg.checkpoint_source
            ),
        ));
    }
    // …and carry a version-history table column for it.
    let column = format!("| v{version} |");
    if !doc.contains(&column) && !doc.contains(&format!("| v{version} ")) {
        diags.push(diag(
            "doc-version",
            &cfg.checkpoint_doc,
            1,
            format!("the version-history table has no `v{version}` column"),
        ));
    }
}

fn check_stream_tables(
    root: &Path,
    cfg: &Config,
    registry: &[ReservedConst],
    diags: &mut Vec<Diagnostic>,
) {
    for doc_path in &cfg.stream_table_docs {
        let Some(doc) = read(root, doc_path, diags) else {
            continue;
        };
        for c in registry {
            let row = format!("| `{}` |", c.name);
            if !doc.contains(&row) {
                diags.push(diag(
                    "doc-stream-table",
                    doc_path,
                    1,
                    format!(
                        "reserved stream `{}` ({}:{}) has no row in this doc's stream table",
                        c.name, cfg.stream_registry, c.line
                    ),
                ));
            }
        }
    }
}

fn read(root: &Path, rel: &str, diags: &mut Vec<Diagnostic>) -> Option<String> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(t) => Some(t),
        Err(e) => {
            diags.push(diag(
                "doc-version",
                rel,
                1,
                format!("cannot read file named in audit.toml: {e}"),
            ));
            None
        }
    }
}

fn find_line(text: &str, needle: &str) -> Option<usize> {
    text.lines().position(|l| l.contains(needle)).map(|i| i + 1)
}

fn diag(rule: &str, path: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: rule.into(),
        path: path.into(),
        line,
        message,
    }
}
