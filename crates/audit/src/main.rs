//! CLI entry point: `cargo run -p antalloc-audit --release`.
//!
//! Finds the workspace root (the nearest ancestor of the current
//! directory holding `audit.toml`, or `--root DIR`), runs the full
//! rule catalog, prints `file:line: [rule] message` diagnostics, and
//! exits nonzero when anything fires — the CI contract.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use antalloc_audit::{config::Config, run};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "antalloc-audit: workspace determinism & safety analyzer\n\n\
                     Usage: antalloc-audit [--root DIR]\n\n\
                     Reads audit.toml at the workspace root and checks every workspace\n\
                     source file against the determinism rule catalog documented in\n\
                     docs/DETERMINISM.md. Exits 1 when any diagnostic fires."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("antalloc-audit: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => match find_root() {
            Some(r) => r,
            None => {
                eprintln!("antalloc-audit: no audit.toml found above the current directory");
                return ExitCode::FAILURE;
            }
        },
    };

    let cfg = match Config::load(&root.join("audit.toml")) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("antalloc-audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&root, &cfg) {
        Ok(diags) if diags.is_empty() => {
            println!("antalloc-audit: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "antalloc-audit: {} diagnostic{} — see docs/DETERMINISM.md for the rule \
                 catalog and pragma syntax",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("antalloc-audit: {e}");
            ExitCode::FAILURE
        }
    }
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("audit.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
