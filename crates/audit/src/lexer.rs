//! A lightweight Rust lexer that masks non-code text.
//!
//! The rule engine works on *masked* source: every character that lives
//! inside a comment (line, block, doc), a string literal (plain, raw,
//! byte), or a char literal is replaced with a space, while code
//! characters keep their exact positions. Substring scans over the
//! masked text therefore never fire on `"HashMap"` appearing in a doc
//! comment or an error message.
//!
//! On top of the mask, [`lex`] classifies lines as test-only (inside a
//! `#[cfg(test)]` item or a `#[test]` function, found by brace matching
//! on the masked text) and extracts `// audit:allow(rule): reason`
//! pragmas from the comment text it masked out.

/// One source line, raw and masked.
#[derive(Debug)]
pub struct Line {
    /// The original text (no trailing newline).
    pub raw: String,
    /// Same length in chars as `raw`, with comment/string/char-literal
    /// characters blanked to spaces.
    pub code: String,
    /// True when the line sits inside a `#[cfg(test)]` item or a
    /// `#[test]` function body.
    pub in_test: bool,
}

/// A `// audit:allow(rule): reason` suppression found in a comment.
#[derive(Debug)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the colon (may be empty — flagged).
    pub reason: String,
    /// Set by the engine when the pragma suppresses a diagnostic.
    pub used: std::cell::Cell<bool>,
}

/// A fully lexed source file.
#[derive(Debug)]
pub struct Lexed {
    /// Lines in order.
    pub lines: Vec<Line>,
    /// All pragmas, in line order.
    pub pragmas: Vec<Pragma>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Masks `text` and classifies its lines.
pub fn lex(text: &str) -> Lexed {
    let masked = mask(text);
    let raw_lines: Vec<&str> = text.split('\n').collect();
    let code_lines: Vec<&str> = masked.split('\n').collect();
    let mut in_test = vec![false; raw_lines.len()];
    mark_test_regions(&code_lines, &mut in_test);

    let mut pragmas = Vec::new();
    for (i, raw) in raw_lines.iter().enumerate() {
        if let Some(p) = parse_pragma(raw, i + 1) {
            pragmas.push(p);
        }
    }

    let lines = raw_lines
        .iter()
        .zip(code_lines.iter())
        .zip(in_test.iter())
        .map(|((raw, code), t)| Line {
            raw: (*raw).to_string(),
            code: (*code).to_string(),
            in_test: *t,
        })
        .collect();
    Lexed { lines, pragmas }
}

/// Replaces comment, string-literal and char-literal characters with
/// spaces, preserving newlines and the position of every code char.
fn mask(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0usize;
    // Number of '#' marks delimiting the current raw string.
    let mut raw_hashes = 0u32;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // Consume the prefix (r, br, rb?) and hashes up to the
                    // opening quote.
                    let mut j = i;
                    while chars.get(j) == Some(&'r') || chars.get(j) == Some(&'b') {
                        out.push(' ');
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        out.push(' ');
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        out.push(' ');
                        j += 1;
                        if hashes == 0 {
                            state = State::Str;
                        } else {
                            raw_hashes = hashes;
                            state = State::RawStr(hashes);
                        }
                    }
                    i = j;
                    continue;
                }
                'b' if next == Some('\'') => {
                    out.push(' ');
                    out.push(' ');
                    state = State::Char;
                    i += 2;
                    continue;
                }
                '\'' if is_char_literal(&chars, i) => {
                    state = State::Char;
                    out.push(' ');
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Block(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else {
                    out.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                    let _ = raw_hashes;
                    continue;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => {
                    // Unterminated char (should not happen in valid Rust);
                    // fail open back to code.
                    state = State::Code;
                    out.push('\n');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// `r"`, `r#"`, `br"`, `br#"` … introduce a raw string at `i`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    // Accept `r`, `br` (and be lenient about `rb`, which is not valid
    // Rust but harmless to mask).
    while matches!(chars.get(j), Some('r') | Some('b')) {
        saw_r |= chars[j] == 'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the `"` at `i` terminate a raw string delimited by `hashes` marks?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if chars.get(i + 1 + k) != Some(&'#') {
            return false;
        }
    }
    true
}

/// Distinguishes a char literal from a lifetime at the `'` in `chars[i]`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
    }
}

/// Marks every line inside a `#[cfg(test)]` item or `#[test]` fn body.
///
/// Attributes are found in the masked text; the item extent is the next
/// `{` after the attribute through its matching `}` (brace-counted on
/// masked text, so braces in strings/comments never unbalance it).
fn mark_test_regions(code_lines: &[&str], in_test: &mut [bool]) {
    let starts: Vec<usize> = code_lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            t.starts_with("#[cfg(test)")
                || t.starts_with("#[cfg(all(test")
                || t.starts_with("#[test]")
                || t.starts_with("#[test(")
        })
        .map(|(i, _)| i)
        .collect();
    for start in starts {
        // Find the first `{` at or after the attribute line, then match.
        let mut depth = 0i64;
        let mut opened = false;
        'outer: for (li, line) in code_lines.iter().enumerate().skip(start) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // An item ending without a body (`;` at depth 0, e.g.
                    // `#[cfg(test)] mod tests;`) covers just its own lines.
                    ';' if !opened && depth == 0 => {
                        for t in in_test.iter_mut().take(li + 1).skip(start) {
                            *t = true;
                        }
                        break 'outer;
                    }
                    _ => {}
                }
                if opened && depth == 0 {
                    for t in in_test.iter_mut().take(li + 1).skip(start) {
                        *t = true;
                    }
                    break 'outer;
                }
            }
        }
        if opened && depth > 0 {
            // Unclosed (truncated fixture): everything to EOF is test.
            for t in in_test.iter_mut().skip(start) {
                *t = true;
            }
        }
    }
}

/// Parses `// audit:allow(rule): reason` out of a raw line, if present.
///
/// Doc comments (`///`, `//!`) never carry pragmas — they are prose
/// about the syntax, not suppressions — so lines starting with one are
/// skipped.
fn parse_pragma(raw: &str, line: usize) -> Option<Pragma> {
    let lead = raw.trim_start();
    if lead.starts_with("///") || lead.starts_with("//!") {
        return None;
    }
    let marker = "audit:allow(";
    let at = raw.find(marker)?;
    // Must be inside a line comment.
    let before = &raw[..at];
    before.rfind("//")?;
    let rest = &raw[at + marker.len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
    Some(Pragma {
        line,
        rule,
        reason,
        used: std::cell::Cell::new(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let l = lex("let a = \"HashMap\"; // HashMap\nlet b = HashMap::new();");
        assert!(!l.lines[0].code.contains("HashMap"));
        assert!(l.lines[1].code.contains("HashMap"));
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let l = lex("let a = r#\"Instant::now\"#; let c = 'x'; let t: &'static str = \"y\";");
        assert!(!l.lines[0].code.contains("Instant"));
        assert!(l.lines[0].code.contains("static"), "lifetime kept as code");
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ HashMap */ code");
        assert!(!l.lines[0].code.contains("HashMap"));
        assert!(l.lines[0].code.contains("code"));
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn x() {}\n}\nfn after() {}\n";
        let l = lex(src);
        assert!(!l.lines[0].in_test);
        assert!(l.lines[1].in_test && l.lines[2].in_test && l.lines[3].in_test);
        assert!(l.lines[4].in_test);
        assert!(!l.lines[5].in_test);
    }

    #[test]
    fn pragma_parses() {
        let l = lex("let x = y as u32; // audit:allow(cast): fits by construction\n");
        assert_eq!(l.pragmas.len(), 1);
        assert_eq!(l.pragmas[0].rule, "cast");
        assert_eq!(l.pragmas[0].reason, "fits by construction");
    }
}
