//! Workspace file discovery and per-file audit profiles.

use std::path::{Path, PathBuf};

use crate::config::Config;

/// How a file is classified for rule selection.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate the file belongs to (`core`, `shims/bytes`, `tests`, …).
    pub crate_name: String,
    /// Relaxed profile: test/bench/example/shim code. Path rules
    /// (nondeterminism, streams, casts, panics) are skipped; crate-root
    /// hygiene still applies.
    pub relaxed: bool,
    /// True for `*/src/lib.rs` and `*/src/main.rs`.
    pub is_crate_root: bool,
}

impl FileInfo {
    /// Classifies a workspace-relative path under `cfg`.
    pub fn classify(rel: &str, cfg: &Config) -> FileInfo {
        let crate_name = if let Some(rest) = rel.strip_prefix("crates/shims/") {
            let name = rest.split('/').next().unwrap_or("");
            format!("shims/{name}")
        } else if let Some(rest) = rel.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("").to_string()
        } else {
            rel.split('/').next().unwrap_or("").to_string()
        };
        let relaxed = crate_name.starts_with("shims/")
            || cfg.relaxed_crates.contains(&crate_name)
            || rel.contains("/tests/")
            || rel.contains("/benches/");
        let is_crate_root = rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs");
        FileInfo {
            rel: rel.to_string(),
            crate_name,
            relaxed,
            is_crate_root,
        }
    }
}

/// Collects every workspace `.rs` file under `crates/`, `examples/` and
/// `tests/`, skipping build output and test fixtures (fixtures are
/// deliberately-bad inputs for the analyzer's own tests).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "examples", "tests"] {
        collect(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
