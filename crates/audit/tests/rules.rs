//! Per-rule fixture tests: every known-bad fixture MUST be flagged by
//! its rule family (and only where expected), and the clean fixture
//! must pass the strictest profile with zero diagnostics.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use antalloc_audit::config::Config;
use antalloc_audit::rules;
use antalloc_audit::walk::FileInfo;
use antalloc_audit::{audit_source, Diagnostic};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read(name: &str) -> String {
    std::fs::read_to_string(fixtures().join(name)).unwrap()
}

/// A config that treats the file under test as maximally audited.
fn strict_config() -> Config {
    Config {
        sim_path_crates: vec!["foo".into()],
        relaxed_crates: vec![],
        cast_audit_files: vec!["crates/foo/src/hot.rs".into()],
        panic_path_files: vec!["crates/foo/src/hot.rs".into()],
        stream_registry: "crates/foo/src/stream.rs".into(),
        ant_index_ceiling: 0xFFFF_FFFF_0000_0000,
        checkpoint_source: "checkpoint.rs".into(),
        checkpoint_doc: "CHECKPOINTS.md".into(),
        stream_table_docs: vec!["ARCHITECTURE.md".into()],
        unsafe_allowlist: BTreeMap::new(),
    }
}

/// The strictest per-file profile: sim-path crate, cast-audited,
/// panic-path, crate root.
fn strict_info() -> FileInfo {
    FileInfo {
        rel: "crates/foo/src/hot.rs".into(),
        crate_name: "foo".into(),
        relaxed: false,
        is_crate_root: true,
    }
}

fn registry() -> Vec<rules::streams::ReservedConst> {
    let text = "pub mod reserved {\n    pub const ENGINE: u64 = u64::MAX;\n    \
                pub const NOISE: u64 = u64::MAX - 1;\n}\n";
    let mut diags = Vec::new();
    let consts = rules::streams::check_registry(text, &strict_config(), &mut diags);
    assert!(diags.is_empty(), "{diags:?}");
    consts
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<&str> {
    let mut rules: Vec<&str> = diags.iter().map(|d| d.rule.as_str()).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn bad_nondet_is_flagged() {
    let mut info = strict_info();
    info.is_crate_root = false; // isolate the nondet family
    let diags = audit_source(&info, &read("bad_nondet.rs"), &strict_config(), &registry());
    assert_eq!(
        rules_fired(&diags),
        [
            "nondet-collection",
            "nondet-env",
            "nondet-thread",
            "nondet-time"
        ],
        "{diags:?}"
    );
    // The PROSE string-literal line and the #[cfg(test)] module must
    // not be flagged: everything sits above the test module.
    let text = read("bad_nondet.rs");
    let cfg_test_line = text
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap()
        + 1;
    let prose_line = text.lines().position(|l| l.contains("PROSE")).unwrap() + 1;
    assert!(diags.iter().all(|d| d.line < cfg_test_line), "{diags:?}");
    assert!(diags.iter().all(|d| d.line != prose_line), "{diags:?}");
}

#[test]
fn bad_streams_is_flagged() {
    let mut info = strict_info();
    info.is_crate_root = false;
    // Not a cast-audit file: the legitimate `ant as u64` ant-index
    // expression below must only be judged by the stream rules.
    info.rel = "crates/foo/src/streams.rs".into();
    let text = read("bad_streams.rs");
    let diags = audit_source(&info, &text, &strict_config(), &registry());
    let literals = diags.iter().filter(|d| d.rule == "stream-literal").count();
    let unknowns = diags
        .iter()
        .filter(|d| d.rule == "stream-unknown-const")
        .count();
    assert_eq!(literals, 2, "decimal + hex literal ids: {diags:?}");
    assert_eq!(unknowns, 1, "reserved::BOGUS: {diags:?}");
    // The allowed shapes (ant-index expression, registered constant)
    // must not fire.
    let fine_line = text
        .lines()
        .position(|l| l.contains("fine_expression"))
        .unwrap()
        + 1;
    assert!(diags.iter().all(|d| d.line < fine_line), "{diags:?}");
    assert_eq!(diags.len(), literals + unknowns);
}

#[test]
fn bad_registry_is_flagged() {
    let mut diags = Vec::new();
    rules::streams::check_registry(&read("bad_registry.rs"), &strict_config(), &mut diags);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "stream-registry"));
    assert!(diags.iter().any(|d| d.message.contains("share id")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("below the ant-index ceiling")));
}

#[test]
fn bad_cast_is_flagged() {
    let mut info = strict_info();
    info.is_crate_root = false;
    let text = read("bad_cast.rs");
    let diags = audit_source(&info, &text, &strict_config(), &registry());
    assert_eq!(rules_fired(&diags), ["cast"], "{diags:?}");
    assert_eq!(
        diags.len(),
        2,
        "truncating + lossy, not idiom/pragma: {diags:?}"
    );
    let idiom_line = text.lines().position(|l| l.contains("count_ones")).unwrap() + 1;
    let pragma_target = text.lines().position(|l| l.contains("n as u64")).unwrap() + 1;
    assert!(diags
        .iter()
        .all(|d| d.line != idiom_line && d.line != pragma_target));
}

#[test]
fn bad_hygiene_is_flagged() {
    let diags = audit_source(
        &strict_info(),
        &read("bad_hygiene.rs"),
        &strict_config(),
        &registry(),
    );
    assert_eq!(
        rules_fired(&diags),
        ["forbid-unsafe", "panic-path"],
        "{diags:?}"
    );
    let panics = diags.iter().filter(|d| d.rule == "panic-path").count();
    assert_eq!(
        panics, 4,
        "unwrap + expect + panic! + todo!, not the excused/test ones"
    );
}

#[test]
fn bad_consistency_is_flagged() {
    let mut diags = Vec::new();
    rules::consistency::check(
        &fixtures().join("bad_consistency"),
        &strict_config(),
        &registry(),
        &mut diags,
    );
    let versions = diags.iter().filter(|d| d.rule == "doc-version").count();
    let tables = diags
        .iter()
        .filter(|d| d.rule == "doc-stream-table")
        .count();
    assert_eq!(
        versions, 2,
        "prose marker + missing table column: {diags:?}"
    );
    assert_eq!(tables, 1, "missing NOISE row: {diags:?}");
}

#[test]
fn clean_fixture_passes_the_strictest_profile() {
    let diags = audit_source(
        &strict_info(),
        &read("clean.rs"),
        &strict_config(),
        &registry(),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn pragma_hygiene() {
    let mut info = strict_info();
    info.is_crate_root = false;
    let cfg = strict_config();
    let reg = registry();

    // A pragma that suppresses nothing rots and must be flagged.
    let diags = audit_source(
        &info,
        "// audit:allow(cast): stale\nlet x = 1;\n",
        &cfg,
        &reg,
    );
    assert_eq!(rules_fired(&diags), ["unused-pragma"], "{diags:?}");

    // Unknown rule names are typos, not suppressions.
    let diags = audit_source(
        &info,
        "// audit:allow(bogus-rule): x\nlet x = 1;\n",
        &cfg,
        &reg,
    );
    assert!(diags.iter().any(|d| d.rule == "bad-pragma"), "{diags:?}");

    // A reason is mandatory.
    let diags = audit_source(
        &info,
        "let x = n as u32; // audit:allow(cast)\n",
        &cfg,
        &reg,
    );
    assert!(diags.iter().any(|d| d.rule == "bad-pragma"), "{diags:?}");
}
