//! Fixture checkpoint codec whose version has drifted from its doc.

const MAGIC: u32 = 0x414E_5441;
const VERSION: u32 = 99;
const MIN_VERSION: u32 = 2;
