//! Known-bad fixture for the `nondet-*` family: every pattern the rule
//! must flag, one per line, in non-test code. NOT compiled — input for
//! the analyzer's tests only.

use std::collections::HashMap;
use std::collections::HashSet;

fn clock() -> std::time::Instant {
    std::time::Instant::now()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn host_threads() -> Option<String> {
    std::env::var("THREADS").ok()
}

fn escape_the_pool() {
    std::thread::spawn(|| {});
}

// In a string or comment the same tokens must NOT fire:
// HashMap, Instant::now, thread::spawn
const PROSE: &str = "HashMap Instant::now env::var thread::spawn";

#[cfg(test)]
mod tests {
    // Inside a test module everything is allowed.
    use std::collections::HashMap;

    fn fine() {
        let _ = std::time::Instant::now();
        let _: HashMap<u32, u32> = HashMap::new();
    }
}
