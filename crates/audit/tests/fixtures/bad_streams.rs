//! Known-bad fixture for the stream-discipline family.

use antalloc_rng::{reserved, StreamSeeder};

fn raw_literal(seeder: &StreamSeeder) {
    // An unregistered magic number: the next subsystem that picks 42
    // silently shares this stream.
    let _ = seeder.stream(42);
}

fn hex_literal(seeder: &StreamSeeder) {
    let _ = seeder.stream(0xDEAD_BEEF);
}

fn unknown_const(seeder: &StreamSeeder) {
    let _ = seeder.stream(reserved::BOGUS);
}

fn fine_expression(seeder: &StreamSeeder, ant: usize) {
    // Ant-index expressions and registered constants are the two
    // allowed shapes.
    let _ = seeder.stream(ant as u64);
    let _ = seeder.stream(reserved::ENGINE);
}
