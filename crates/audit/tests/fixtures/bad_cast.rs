//! Known-bad fixture for the cast audit.

fn truncating(n: usize) -> u32 {
    // usize -> u32 silently truncates above 2^32 ants.
    n as u32
}

fn lossy(x: u64) -> f64 {
    x as f64
}

fn widening_idiom(mask: u64) -> usize {
    // Registered widening idiom: must NOT fire.
    mask.count_ones() as usize
}

fn pragma_with_reason(n: usize) -> u64 {
    // audit:allow(cast): usize -> u64 is lossless on every supported target.
    n as u64
}
