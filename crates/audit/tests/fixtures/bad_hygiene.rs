//! Known-bad fixture for panic hygiene (as an engine-path file) and,
//! doubling as a crate root with no `#![forbid(unsafe_code)]`, for the
//! forbid rule.

fn tears_down_a_worker(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn with_message(x: Option<u32>) -> u32 {
    x.expect("mid-round abort")
}

fn aborts() {
    panic!("boom");
}

fn unfinished() {
    todo!()
}

fn excused(x: Option<u32>) -> u32 {
    // audit:allow(panic-path): fixture invariant — x is Some by construction.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    fn tests_may_unwrap(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
