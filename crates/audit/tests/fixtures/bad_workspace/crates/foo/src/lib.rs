// Deliberately bad crate root: no #![forbid(unsafe_code)], a
// default-hasher collection, a truncating cast and an unwrap, all in
// one sim-path file.

use std::collections::HashMap;

pub fn census(m: &HashMap<u32, u64>, n: usize) -> u64 {
    let _ = n as u32;
    m.values().copied().next().unwrap()
}
