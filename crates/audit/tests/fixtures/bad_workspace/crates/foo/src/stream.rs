//! Fixture registry: one entry below the ceiling.

pub mod reserved {
    /// Collides with ant index 3.
    pub const ENGINE: u64 = 3;
}
