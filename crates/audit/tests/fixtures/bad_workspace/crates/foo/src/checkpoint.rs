const VERSION: u32 = 7;
