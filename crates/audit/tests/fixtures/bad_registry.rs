//! Known-bad fixture for the registry soundness checks: a duplicate id
//! and an id below the ant-index ceiling.

pub mod reserved {
    /// Fine.
    pub const ENGINE: u64 = u64::MAX;
    /// Duplicate of ENGINE.
    pub const NOISE: u64 = u64::MAX;
    /// Collides with ant index 7.
    pub const LOW: u64 = 7;
}
