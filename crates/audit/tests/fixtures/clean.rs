//! Clean fixture: exercises every rule family's *allowed* shapes and
//! must produce zero diagnostics under the strictest profile (sim-path
//! crate, cast-audited, panic-path file).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Deterministic, ordered iteration.
pub fn census(counts: &BTreeMap<u32, u64>) -> u64 {
    counts.values().sum()
}

/// Widening idiom: allowed without a pragma.
pub fn popcount_index(mask: u64) -> usize {
    mask.count_ones() as usize
}

/// Pragma'd cast with a recorded reason.
pub fn to_wide(n: usize) -> u64 {
    // audit:allow(cast): usize -> u64 is lossless on every supported target.
    n as u64
}

/// Errors propagate instead of panicking on the engine path.
pub fn safe_lookup(xs: &[u32], i: usize) -> Result<u32, String> {
    xs.get(i).copied().ok_or_else(|| format!("no slot {i}"))
}

/// Prose mentioning HashMap, Instant::now and thread::spawn never
/// fires, and neither do string literals:
pub const PROSE: &str = "HashMap Instant::now env::var thread::spawn as u32 .unwrap()";

#[cfg(test)]
mod tests {
    // Test code runs the relaxed profile.
    use std::collections::HashMap;

    #[test]
    fn hash_and_unwrap_are_fine_here() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        let _ = m.get(&1).copied().unwrap();
        let _ = 3usize as u32;
    }
}
