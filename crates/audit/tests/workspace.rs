//! End-to-end tests: the real workspace must audit clean (library API
//! and binary), and the deliberately-bad fixture workspace must make
//! the binary exit nonzero with a diagnostic from every rule family.

use std::path::{Path, PathBuf};
use std::process::Command;

use antalloc_audit::config::Config;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn bad_workspace() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace")
}

#[test]
fn real_workspace_audits_clean() {
    let root = repo_root();
    let cfg = Config::load(&root.join("audit.toml")).unwrap();
    let diags = antalloc_audit::run(&root, &cfg).unwrap();
    assert!(
        diags.is_empty(),
        "workspace must audit clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_zero_on_real_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_antalloc-audit"))
        .arg("--root")
        .arg(repo_root())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("workspace clean"));
}

#[test]
fn binary_exits_nonzero_on_bad_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_antalloc-audit"))
        .arg("--root")
        .arg(bad_workspace())
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "bad fixture workspace must fail the audit"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One diagnostic from every rule family.
    for rule in [
        "[nondet-collection]",
        "[stream-registry]",
        "[cast]",
        "[panic-path]",
        "[forbid-unsafe]",
        "[doc-version]",
        "[doc-stream-table]",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
