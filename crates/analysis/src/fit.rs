//! Least-squares helpers for scaling-law checks.
//!
//! The ε-sweeps (Theorems 3.2/3.6) assert *linearity in ε* by fitting
//! `regret = a + b·ε` and checking `R²`; the memory sweep fits a
//! log-log slope.

/// An ordinary least-squares line `y ≈ intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²` (1 for a perfect line; 0 when
    /// the fit explains nothing or the input is degenerate).
    pub r_squared: f64,
}

/// Fits `y = a + b·x` by least squares.
///
/// # Panics
/// If the slices differ in length or have fewer than 2 points.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return LinearFit {
            intercept: my,
            slope: 0.0,
            r_squared: 0.0,
        };
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        intercept,
        slope,
        r_squared,
    }
}

/// The log-log slope of `(x, y)` pairs: the exponent `p` in `y ∝ x^p`.
///
/// Non-positive points are skipped (they have no logarithm); panics if
/// fewer than 2 usable points remain.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len());
    let (lx, ly): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .unzip();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_reasonable_r2() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                2.0 * x
                    + 5.0
                    + if (x as u32).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r_squared > 0.999);
    }

    #[test]
    fn degenerate_x_is_flat() {
        let f = linear_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 0.0);
        assert!((f.intercept - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_slope() {
        // y = 3 x^{1.5}.
        let xs: Vec<f64> = (1..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
        let f = loglog_slope(&xs, &ys);
        assert!((f.slope - 1.5).abs() < 1e-9);
        assert!((f.intercept - 3f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn loglog_skips_nonpositive() {
        let f = loglog_slope(&[0.0, 1.0, 2.0, 4.0], &[5.0, 1.0, 2.0, 4.0]);
        assert!((f.slope - 1.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn fit_recovers_random_lines(
            a in -100.0f64..100.0,
            b in -100.0f64..100.0,
            n in 3usize..30,
        ) {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| a + b * x).collect();
            let f = linear_fit(&xs, &ys);
            prop_assert!((f.slope - b).abs() < 1e-6);
            prop_assert!((f.intercept - a).abs() < 1e-6);
        }
    }
}
