//! Appendix E concentration bounds (Theorems E.2 and E.3).
//!
//! Used two ways: tests size their statistical tolerances from these, and
//! the Precise Sigmoid analysis bench prints the median-amplification
//! failure probability next to the measured failure rate.

/// Theorem E.2(2): `P[X ≥ (1+δ)·μ] ≤ exp(−μδ²/3)` for `δ ∈ (0, 1]`.
///
/// For `δ > 1` falls back to form (1),
/// `(e^δ/(1+δ)^{1+δ})^μ`, which is valid for all `δ > 0`.
pub fn chernoff_above(mean: f64, delta: f64) -> f64 {
    assert!(mean >= 0.0 && delta > 0.0);
    if delta <= 1.0 {
        (-mean * delta * delta / 3.0).exp()
    } else {
        let ln_bound = mean * (delta - (1.0 + delta) * (1.0 + delta).ln_1p_shim());
        ln_bound.exp()
    }
}

/// Theorem E.2(5): `P[X ≤ (1−δ)·μ] ≤ exp(−μδ²/2)` for `δ ∈ (0, 1)`.
pub fn chernoff_below(mean: f64, delta: f64) -> f64 {
    assert!(mean >= 0.0 && (0.0..1.0).contains(&delta));
    (-mean * delta * delta / 2.0).exp()
}

/// Theorem E.2(3): `P[X ≥ R] ≤ 2^{−R}` for `R ≥ 6·μ`.
/// Returns `None` when the precondition fails.
pub fn chernoff_poisson_tail(mean: f64, r: f64) -> Option<f64> {
    (r >= 6.0 * mean).then(|| 2f64.powf(-r))
}

/// Theorem E.3 with `α = 1/2`: the probability that the median of `m`
/// i.i.d. Bernoulli(`p`) samples is wrong,
/// `P[Y ≥ m/2] ≤ ((2p)^{1/2}·(2(1−p))^{1/2})^m = (4p(1−p))^{m/2}`.
pub fn median_amplification_failure(p: f64, m: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    (4.0 * p * (1.0 - p)).powf(m as f64 / 2.0)
}

/// `ln(1+x)` helper with a name that doesn't collide with the std
/// method on `f64` receivers inside the formula above.
trait Ln1pShim {
    fn ln_1p_shim(self) -> f64;
}
impl Ln1pShim for f64 {
    fn ln_1p_shim(self) -> f64 {
        self.ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        // μ = 12, δ = 1/2 → e^{−1}.
        assert!((chernoff_above(12.0, 0.5) - (-1.0f64).exp()).abs() < 1e-12);
        // μ = 16, δ = 1/2 → e^{−2}.
        assert!((chernoff_below(16.0, 0.5) - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn poisson_tail_precondition() {
        assert_eq!(chernoff_poisson_tail(1.0, 5.0), None);
        let b = chernoff_poisson_tail(1.0, 10.0).unwrap();
        assert!((b - 2f64.powf(-10.0)).abs() < 1e-15);
    }

    #[test]
    fn median_amplification_theorem_32_shape() {
        // §5 sets p = (e/n^8)^{ε/c_χ} and m = ⌈2c_χ/ε + 1⌉ and claims
        // failure ~ n^{-8}. That statement is asymptotic in n: at
        // simulation scales (n ≤ 10^6) the per-sample error p is still
        // ≈ 0.1–0.3 and the median failure, while small, is far from
        // n^{-8}. We pin down both facts: the failure shrinks
        // *exponentially in m* (the mechanism), and the concrete value
        // at n = 1000, ε = 0.2 is ≈ 3.6·10^{-3} (what simulations see).
        let n = 1000f64;
        let eps = 0.2;
        let c_chi = 10.0;
        let p = (std::f64::consts::E / n.powf(8.0)).powf(eps / c_chi);
        let m = (2.0 * c_chi / eps + 1.0).ceil() as u64;
        let fail = median_amplification_failure(p, m);
        assert!((fail - 3.647e-3).abs() / 3.647e-3 < 1e-3, "fail = {fail:e}");
        // Doubling m squares the bound (exponential decay).
        let fail2 = median_amplification_failure(p, 2 * m);
        assert!((fail2 - fail * fail).abs() / fail2 < 1e-6);
        // And for a per-sample error already at the grey-zone edge
        // (p = n^{-3}, a realistic simulation reliability target), a
        // 21-sample median is astronomically reliable.
        let sharp = median_amplification_failure(1e-9, 21);
        assert!(sharp < 1e-80);
    }

    #[test]
    fn median_failure_decreases_in_m() {
        let p = 0.2;
        assert!(median_amplification_failure(p, 21) < median_amplification_failure(p, 11));
        assert_eq!(median_amplification_failure(0.5, 11), 1.0);
    }

    proptest! {
        /// Bounds are probabilities (≤ 1) in their valid ranges and
        /// monotone in δ.
        #[test]
        fn bounds_are_probabilities(mean in 0.1f64..1e4, delta in 0.01f64..0.99) {
            let a = chernoff_above(mean, delta);
            let b = chernoff_below(mean, delta);
            // exp may underflow to exactly 0 for huge exponents: fine.
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
            let a2 = chernoff_above(mean, delta * 1.01);
            prop_assert!(a2 <= a + 1e-15);
        }

        /// Empirical check of E.2(2) against simulation-free math: the
        /// bound must dominate the normal approximation's tail at ≥3σ.
        #[test]
        fn above_form1_valid_for_large_delta(mean in 1.0f64..100.0, delta in 1.01f64..5.0) {
            let bound = chernoff_above(mean, delta);
            prop_assert!(bound > 0.0 && bound <= 1.0);
        }
    }
}
