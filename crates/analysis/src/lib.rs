//! Analysis companions to the experiments: the paper's theorem bounds in
//! executable form (so every experiment table can print a `paper`
//! column), the concentration inequalities of Appendix E, and small
//! regression helpers for scaling-law checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod chernoff;
mod fit;

pub use bounds::{
    thm31_average_regret_bound, thm31_total_regret_bound, thm32_average_regret, thm33_regret_floor,
    thm35_regret_floor, thm36_average_regret,
};
pub use chernoff::{
    chernoff_above, chernoff_below, chernoff_poisson_tail, median_amplification_failure,
};
pub use fit::{linear_fit, loglog_slope, LinearFit};
