//! The paper's quantitative claims as executable bounds.
//!
//! Each function returns the *paper side* of a paper-vs-measured
//! comparison. Constants the paper leaves unnamed (the `c` in `cnk/γ`)
//! are exposed as arguments so tables can show the bound's shape at a
//! declared constant rather than pretending the paper fixed one.

/// Theorem 3.1's total-regret bound for Algorithm Ant after `t` rounds:
/// `R(t) ≤ c·n·k/γ + (5γ·Σd + 3)·t` — with `3` absorbing the paper's
/// `+3` per-round slack (it states `5γΣd + 3` inside the parenthesis;
/// we keep that form and let callers scale `k` in if they wish).
pub fn thm31_total_regret_bound(
    c: f64,
    n: usize,
    k: usize,
    gamma: f64,
    sum_demands: u64,
    t: u64,
) -> f64 {
    assert!(gamma > 0.0);
    c * (n as f64) * (k as f64) / gamma + (5.0 * gamma * sum_demands as f64 + 3.0) * t as f64
}

/// Theorem 3.1's steady-state (per-round) regret bound,
/// `5γ·Σd + 3`: what the average regret should not exceed once the
/// `c·n·k/γ` transient has been amortized away.
pub fn thm31_average_regret_bound(gamma: f64, sum_demands: u64) -> f64 {
    5.0 * gamma * sum_demands as f64 + 3.0
}

/// Theorem 3.2's asymptotic average regret for Algorithm Precise
/// Sigmoid: `lim R(t)/t = γ·ε·Σd + O(1)`.
pub fn thm32_average_regret(gamma: f64, eps: f64, sum_demands: u64) -> f64 {
    gamma * eps * sum_demands as f64
}

/// Theorem 3.3's floor: with `c·log(1/ε)` bits of memory,
/// `R(t) ≥ ε·γ*·Σd·t` (w.o.p., for `t ≥ 1/√ε`); per-round form.
pub fn thm33_regret_floor(eps: f64, gamma_star: f64, sum_demands: u64) -> f64 {
    eps * gamma_star * sum_demands as f64
}

/// Theorem 3.5's adversarial floor: any algorithm averages at least
/// `(1−o(1))·γ*·Σd` regret per round; this returns the `γ*·Σd`
/// yardstick (the `1−o(1)` is what the experiment measures).
pub fn thm35_regret_floor(gamma_star: f64, sum_demands: u64) -> f64 {
    gamma_star * sum_demands as f64
}

/// Theorem 3.6's asymptotic average regret for Algorithm Precise
/// Adversarial: `lim R(t)/t = γ(1+ε)·Σd + O(1)`.
pub fn thm36_average_regret(gamma: f64, eps: f64, sum_demands: u64) -> f64 {
    gamma * (1.0 + eps) * sum_demands as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm31_shapes() {
        // Doubling t roughly doubles the bound once transient ≪ t·rate.
        let b1 = thm31_total_regret_bound(1.0, 1000, 2, 0.05, 400, 10_000);
        let b2 = thm31_total_regret_bound(1.0, 1000, 2, 0.05, 400, 20_000);
        assert!(b2 / b1 > 1.8 && b2 / b1 < 2.2);
        // Average bound is linear in γ and Σd.
        assert!(thm31_average_regret_bound(0.02, 400) < thm31_average_regret_bound(0.04, 400));
        let a = thm31_average_regret_bound(0.05, 100);
        let b = thm31_average_regret_bound(0.05, 200);
        assert!((b - 3.0) / (a - 3.0) - 2.0 < 1e-12);
    }

    #[test]
    fn transient_term_dominates_small_t() {
        let b = thm31_total_regret_bound(1.0, 10_000, 4, 0.01, 100, 1);
        assert!(b > 4_000_000.0 * 0.9);
    }

    #[test]
    fn precise_rates_scale_linearly_in_eps() {
        let r1 = thm32_average_regret(0.05, 0.1, 1000);
        let r2 = thm32_average_regret(0.05, 0.2, 1000);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
        let f1 = thm33_regret_floor(0.1, 0.05, 1000);
        assert!(
            (f1 - r1).abs() < 1e-12,
            "floor matches Thm 3.2 rate at γ = γ*"
        );
    }

    #[test]
    fn adversarial_bounds_bracket() {
        // Thm 3.6's achievable rate approaches Thm 3.5's floor as ε → 0
        // when γ = γ*.
        let floor = thm35_regret_floor(0.05, 1000);
        let rate = thm36_average_regret(0.05, 0.01, 1000);
        assert!(rate > floor);
        assert!((rate / floor - 1.01).abs() < 1e-9);
    }
}
