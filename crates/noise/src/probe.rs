//! Per-ant feedback probe with a debug-mode single-sample guard.
//!
//! The model defines one feedback random variable per (ant, task, round).
//! Controllers receive a [`FeedbackProbe`] wrapping the round's prepared
//! state and their own RNG; in debug builds the probe panics if the same
//! task is sampled twice in one round, which would silently give an
//! algorithm two independent looks at a variable the model says it sees
//! once.

use antalloc_rng::AntRng;

use crate::feedback::Feedback;
use crate::model::{PreparedRound, RoundView};

/// One ant's view of one round's feedback.
pub struct FeedbackProbe<'a> {
    view: RoundView<'a>,
    rng: &'a mut AntRng,
    #[cfg(debug_assertions)]
    sampled: u128,
    #[cfg(debug_assertions)]
    sampled_overflow: Vec<bool>,
}

impl<'a> FeedbackProbe<'a> {
    /// Wraps a prepared round and an ant's RNG.
    #[inline]
    pub fn new(prepared: &'a PreparedRound, rng: &'a mut AntRng) -> Self {
        Self::from_view(prepared.view(), rng)
    }

    /// Wraps an already-constructed [`RoundView`] and an ant's RNG.
    /// Bank loops use this to share one view across a whole bank.
    #[inline]
    pub fn from_view(view: RoundView<'a>, rng: &'a mut AntRng) -> Self {
        Self {
            view,
            rng,
            #[cfg(debug_assertions)]
            sampled: 0,
            #[cfg(debug_assertions)]
            sampled_overflow: Vec::new(),
        }
    }

    /// Number of tasks visible this round.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.view.num_tasks()
    }

    /// The current round index (drives the algorithms' phase clocks).
    #[inline]
    pub fn round(&self) -> u64 {
        self.view.round()
    }

    /// Draws this ant's signal for `task`.
    ///
    /// # Panics (debug builds)
    /// If the task was already sampled by this probe.
    #[inline]
    pub fn sample(&mut self, task: usize) -> Feedback {
        #[cfg(debug_assertions)]
        self.mark(task);
        self.view.sample(task, self.rng)
    }

    /// Draws signals for all tasks into `out` (cleared first).
    pub fn sample_all(&mut self, out: &mut Vec<Feedback>) {
        out.clear();
        for task in 0..self.num_tasks() {
            out.push(self.sample(task));
        }
    }

    /// Direct access to the ant's RNG for the algorithm's own coin flips
    /// (pause/leave/join decisions).
    #[inline]
    pub fn rng(&mut self) -> &mut AntRng {
        self.rng
    }

    #[cfg(debug_assertions)]
    fn mark(&mut self, task: usize) {
        if task < 128 {
            let bit = 1u128 << task;
            assert!(
                self.sampled & bit == 0,
                "task {task} sampled twice in round {}",
                self.view.round()
            );
            self.sampled |= bit;
        } else {
            if self.sampled_overflow.len() <= task {
                self.sampled_overflow.resize(task + 1, false);
            }
            assert!(
                !self.sampled_overflow[task],
                "task {task} sampled twice in round {}",
                self.view.round()
            );
            self.sampled_overflow[task] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NoiseModel;
    use antalloc_rng::Xoshiro256pp;

    fn prep() -> PreparedRound {
        NoiseModel::Sigmoid { lambda: 0.5 }.prepare(7, &[0, 0, 0], &[10, 10, 10])
    }

    #[test]
    fn samples_all_tasks() {
        let p = prep();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut probe = FeedbackProbe::new(&p, &mut rng);
        assert_eq!(probe.round(), 7);
        let mut out = Vec::new();
        probe.sample_all(&mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sampled twice")]
    fn double_sampling_panics_in_debug() {
        let p = prep();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut probe = FeedbackProbe::new(&p, &mut rng);
        probe.sample(1);
        probe.sample(1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sampled twice")]
    fn double_sampling_panics_beyond_bitmask_width() {
        let deficits = vec![0i64; 200];
        let demands = vec![10u64; 200];
        let p = NoiseModel::Exact.prepare(0, &deficits, &demands);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut probe = FeedbackProbe::new(&p, &mut rng);
        probe.sample(150);
        probe.sample(150);
    }

    #[test]
    fn distinct_tasks_do_not_trip_guard() {
        let p = prep();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut probe = FeedbackProbe::new(&p, &mut rng);
        probe.sample(0);
        probe.sample(1);
        probe.sample(2);
    }
}
