//! The top-level noise model and its per-round prepared form.

use antalloc_rng::{AntRng, Bernoulli, SplitMix64};

use crate::feedback::Feedback;
use crate::policy::GreyZonePolicy;
use crate::sigmoid::lack_probability;

/// A feedback generator, configured once per simulation.
///
/// At the start of each round the engine calls [`NoiseModel::prepare`]
/// with the deficits frozen at the end of the previous round; ants then
/// draw their private signals from the returned [`PreparedRound`].
#[derive(Clone, Debug, PartialEq)]
pub enum NoiseModel {
    /// §2.2 sigmoid feedback: `P[lack] = s(λ·Δ)`, i.i.d. per ant per task.
    Sigmoid {
        /// Steepness `λ` of the sigmoid.
        lambda: f64,
    },
    /// Remark 3.4: sigmoid marginals, but with probability `rho` a task's
    /// draw in a round is *shared by every ant* (perfect correlation)
    /// instead of i.i.d. The marginal `P(lack)` is unchanged.
    CorrelatedSigmoid {
        /// Steepness `λ` of the sigmoid.
        lambda: f64,
        /// Probability that a (task, round) uses one shared draw.
        rho: f64,
        /// Seed for the model's internal shared-draw stream.
        seed: u64,
    },
    /// §2.2 adversarial feedback: exact truth outside the grey zone
    /// `[−γ_ad·d, γ_ad·d]`, `policy` inside it.
    Adversarial {
        /// The adversary's grey-zone half-width as a fraction of demand.
        gamma_ad: f64,
        /// Behaviour inside the grey zone.
        policy: GreyZonePolicy,
    },
    /// Noise-free binary feedback (the model of \[11\]): `lack` iff
    /// `W ≤ d`, i.e. iff the deficit is non-negative.
    Exact,
}

/// Per-task sampling state for one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskFeedback {
    /// Every ant draws i.i.d.: `lack` iff the next `u64` is below the
    /// threshold (a [`Bernoulli`] in raw form).
    Random {
        /// `P[lack]` as a 2^64-scaled threshold.
        lack_threshold: u64,
    },
    /// Every ant receives the same fixed signal this round.
    Fixed(Feedback),
}

/// All tasks' sampling state for one round; cheap to rebuild every round.
#[derive(Clone, Debug)]
pub struct PreparedRound {
    tasks: Vec<TaskFeedback>,
    round: u64,
}

impl NoiseModel {
    /// Checks the model's parameters against a colony with `num_tasks`
    /// tasks, returning a description of the first problem found.
    ///
    /// Scenario-level validation (and timeline `set-noise` events) call
    /// this so a noise model that would produce meaningless feedback is
    /// rejected at build time instead of mid-run.
    pub fn validate(&self, num_tasks: usize) -> Result<(), String> {
        match self {
            NoiseModel::Sigmoid { lambda } => {
                if !(lambda.is_finite() && *lambda > 0.0) {
                    return Err(format!(
                        "sigmoid steepness λ must be positive and finite, got {lambda}"
                    ));
                }
            }
            NoiseModel::CorrelatedSigmoid { lambda, rho, .. } => {
                if !(lambda.is_finite() && *lambda > 0.0) {
                    return Err(format!(
                        "sigmoid steepness λ must be positive and finite, got {lambda}"
                    ));
                }
                if !(rho.is_finite() && (0.0..=1.0).contains(rho)) {
                    return Err(format!("correlation ρ must be in [0, 1], got {rho}"));
                }
            }
            NoiseModel::Adversarial { gamma_ad, policy } => {
                if !(gamma_ad.is_finite() && (0.0..1.0).contains(gamma_ad)) {
                    return Err(format!(
                        "grey-zone width γ_ad must be in [0, 1), got {gamma_ad}"
                    ));
                }
                match policy {
                    GreyZonePolicy::RandomLack(p)
                        if !(p.is_finite() && (0.0..=1.0).contains(p)) =>
                    {
                        return Err(format!(
                            "random-lack probability must be in [0, 1], got {p}"
                        ));
                    }
                    GreyZonePolicy::LoadThreshold(thresholds) if thresholds.len() != num_tasks => {
                        return Err(format!(
                            "load-threshold policy has {} thresholds, colony has \
                             {num_tasks} tasks",
                            thresholds.len()
                        ));
                    }
                    _ => {}
                }
            }
            NoiseModel::Exact => {}
        }
        Ok(())
    }

    /// Folds a round's deficits into per-task sampling state.
    ///
    /// `deficits[j] = d(j) − W(j)` at the end of the previous round;
    /// `demands[j] = d(j)`.
    pub fn prepare(&self, round: u64, deficits: &[i64], demands: &[u64]) -> PreparedRound {
        assert_eq!(deficits.len(), demands.len());
        let tasks = match self {
            NoiseModel::Sigmoid { lambda } => deficits
                .iter()
                .map(|&delta| bernoulli_task(lack_probability(*lambda, delta)))
                .collect(),
            NoiseModel::CorrelatedSigmoid { lambda, rho, seed } => deficits
                .iter()
                .enumerate()
                .map(|(j, &delta)| {
                    let p = lack_probability(*lambda, delta);
                    // Deterministic per-(round, task) auxiliary draws so
                    // replays and checkpoints agree.
                    let mut aux = SplitMix64::new(
                        seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((j as u64) << 32),
                    );
                    let share = (aux.next_u64() as f64 / u64::MAX as f64) < *rho;
                    if share {
                        let shared_lack = (aux.next_u64() as f64 / u64::MAX as f64) < p;
                        TaskFeedback::Fixed(if shared_lack {
                            Feedback::Lack
                        } else {
                            Feedback::Overload
                        })
                    } else {
                        bernoulli_task(p)
                    }
                })
                .collect(),
            NoiseModel::Adversarial { gamma_ad, policy } => deficits
                .iter()
                .zip(demands)
                .enumerate()
                .map(|(j, (&delta, &d))| {
                    let edge = gamma_ad * d as f64;
                    let delta_f = delta as f64;
                    if delta_f > edge {
                        TaskFeedback::Fixed(Feedback::Lack)
                    } else if delta_f < -edge {
                        TaskFeedback::Fixed(Feedback::Overload)
                    } else {
                        match policy.fixed_answer(j, round, delta, d) {
                            Some(answer) => TaskFeedback::Fixed(answer),
                            None => bernoulli_task(
                                policy.random_lack_probability().expect("random policy"),
                            ),
                        }
                    }
                })
                .collect(),
            NoiseModel::Exact => deficits
                .iter()
                .map(|&delta| TaskFeedback::Fixed(Feedback::truth(delta)))
                .collect(),
        };
        PreparedRound { tasks, round }
    }

    /// The marginal `P[lack]` an ant faces for a given deficit, when that
    /// probability is well-defined independent of round and task index
    /// (`None` for round-dependent adversarial policies).
    pub fn marginal_lack_probability(&self, deficit: i64, demand: u64) -> Option<f64> {
        match self {
            NoiseModel::Sigmoid { lambda } | NoiseModel::CorrelatedSigmoid { lambda, .. } => {
                Some(lack_probability(*lambda, deficit))
            }
            NoiseModel::Exact => Some(if deficit >= 0 { 1.0 } else { 0.0 }),
            NoiseModel::Adversarial { gamma_ad, policy } => {
                let edge = gamma_ad * demand as f64;
                let delta_f = deficit as f64;
                if delta_f > edge {
                    Some(1.0)
                } else if delta_f < -edge {
                    Some(0.0)
                } else {
                    match policy {
                        GreyZonePolicy::RandomLack(p) => Some(*p),
                        GreyZonePolicy::AlwaysLack => Some(1.0),
                        GreyZonePolicy::AlwaysOverload => Some(0.0),
                        GreyZonePolicy::Truthful => Some(if deficit >= 0 { 1.0 } else { 0.0 }),
                        GreyZonePolicy::Inverted => Some(if deficit >= 0 { 0.0 } else { 1.0 }),
                        _ => None,
                    }
                }
            }
        }
    }

    /// True iff the model is stochastic (needs per-ant RNG draws).
    pub fn is_stochastic(&self) -> bool {
        match self {
            NoiseModel::Sigmoid { .. } | NoiseModel::CorrelatedSigmoid { .. } => true,
            NoiseModel::Adversarial { policy, .. } => {
                matches!(policy, GreyZonePolicy::RandomLack(_))
            }
            NoiseModel::Exact => false,
        }
    }
}

#[inline]
fn bernoulli_task(p: f64) -> TaskFeedback {
    let b = Bernoulli::new(p);
    let (lack_threshold, always) = b.raw_threshold();
    if b.never() {
        TaskFeedback::Fixed(Feedback::Overload)
    } else if always {
        TaskFeedback::Fixed(Feedback::Lack)
    } else {
        // The raw 2^64-scaled threshold, taken losslessly: recovering it
        // through `probability()` would round the 64-bit threshold to an
        // f64 mantissa and re-truncate, shifting realized probabilities
        // near 1 by up to 2^-54.
        TaskFeedback::Random { lack_threshold }
    }
}

/// A borrowed, `Copy` view of one round's sampling state.
///
/// Engines that step ants bank-wise construct the view **once per bank
/// per round** and hand it to every ant in the bank, instead of
/// re-borrowing the owning [`PreparedRound`] through a fresh probe per
/// ant. The view is two words (slice pointer + round), so cloning it
/// into a [`crate::FeedbackProbe`] is free.
#[derive(Clone, Copy, Debug)]
pub struct RoundView<'a> {
    tasks: &'a [TaskFeedback],
    round: u64,
}

impl RoundView<'_> {
    /// Number of tasks visible this round.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The round these signals describe.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Draws the signal for `task` for one ant (see
    /// [`PreparedRound::sample`] for the at-most-once contract).
    #[inline(always)]
    pub fn sample(&self, task: usize, rng: &mut AntRng) -> Feedback {
        match self.tasks[task] {
            TaskFeedback::Fixed(f) => f,
            TaskFeedback::Random { lack_threshold } => {
                if rng.next_u64() < lack_threshold {
                    Feedback::Lack
                } else {
                    Feedback::Overload
                }
            }
        }
    }

    /// Draws one ant's **full signal vector** in one pass: `out[j] = 1`
    /// iff the signal for task `j` is `lack`, for every task in index
    /// order. This is the batched sampling step the structure-of-arrays
    /// bank loops use for their idle paths (an idle ant samples every
    /// task), hoisting the per-call dispatch out of the per-task loop —
    /// the generator advance + threshold compare run as one tight,
    /// vectorizable loop, like [`antalloc_rng::Bernoulli::fill`].
    ///
    /// Bit-identical to calling [`RoundView::sample`] per task in index
    /// order: the same draws are consumed from `rng` (none for `Fixed`
    /// signals), with the same results.
    ///
    /// # Panics
    /// If `out.len() != self.num_tasks()`.
    #[inline]
    pub fn fill_lack(&self, rng: &mut AntRng, out: &mut [u8]) {
        assert_eq!(out.len(), self.tasks.len(), "one slot per task");
        for (slot, task) in out.iter_mut().zip(self.tasks) {
            *slot = match *task {
                TaskFeedback::Fixed(f) => u8::from(f.is_lack()),
                TaskFeedback::Random { lack_threshold } => {
                    u8::from(rng.next_u64() < lack_threshold)
                }
            };
        }
    }

    /// Bit-packed [`RoundView::fill_lack`]: bit `j` is set iff task
    /// `j`'s signal is `lack`. Same draws consumed, in the same task
    /// order, but the result lands in one register instead of a row
    /// buffer — the form the flat bank loops fold straight into a
    /// popcount + nth-set-bit uniform pick.
    ///
    /// # Precondition
    /// At most 64 tasks; callers with more must branch to
    /// [`RoundView::fill_lack`]. The kernels gate on `num_tasks() <= 64`
    /// before taking this path, and scenario validation caps the task
    /// count at build time, so the precondition is checked once up front
    /// rather than asserted per draw in the hot loop (debug builds still
    /// assert).
    #[inline]
    pub fn lack_mask(&self, rng: &mut AntRng) -> u64 {
        debug_assert!(self.tasks.len() <= 64, "lack_mask: more than 64 tasks");
        let mut mask = 0u64;
        for (j, task) in self.tasks.iter().enumerate() {
            let lack = match *task {
                TaskFeedback::Fixed(f) => f.is_lack(),
                TaskFeedback::Random { lack_threshold } => rng.next_u64() < lack_threshold,
            };
            mask |= u64::from(lack) << j;
        }
        mask
    }
}

/// One round's sampling state as *sensed* by each ant.
///
/// The sensing layer's core abstraction: where [`RoundView`] is **one**
/// signal table shared by the whole colony (the well-mixed setting),
/// a `SensedRound` maps every ant to one of several signal *rows* —
/// e.g. one row per arena site, so an ant senses only its local tasks.
///
/// Two forms, distinguished by [`SensedRound::shared_view`]:
///
/// * **Shared** ([`SensedRound::shared`]): a single row, every ant
///   senses it. Kernels detect this with `shared_view()` and run their
///   pre-existing shared-view loops — the well-mixed path compiles to
///   exactly the old code and stays bit-identical (same draws, same
///   `fill_lack`/`lack_mask` paths).
/// * **Per-ant** ([`SensedRound::from_parts`]): `sense_of[ant]` selects
///   the row; kernels call [`SensedRound::view_for`] per ant. Rows are
///   plain [`TaskFeedback`] tables, so each ant's draw sequence is the
///   same as if its row were the whole colony's view — determinism per
///   ant is unchanged, only *which* signals it sees varies.
///
/// Like [`RoundView`] this is a few words and `Copy`; build it once per
/// round and hand it to every bank.
#[derive(Clone, Copy, Debug)]
pub struct SensedRound<'a> {
    /// Concatenated rows, `k` entries each (row `r` at `r*k..(r+1)*k`).
    site_tasks: &'a [TaskFeedback],
    /// Global ant id → row index; empty ⇒ every ant senses row 0.
    sense_of: &'a [u32],
    k: usize,
    round: u64,
}

impl<'a> SensedRound<'a> {
    /// The well-mixed form: every ant senses `prepared`'s single table.
    #[inline]
    pub fn shared(prepared: &'a PreparedRound) -> Self {
        SensedRound {
            site_tasks: &prepared.tasks,
            sense_of: &[],
            k: prepared.tasks.len(),
            round: prepared.round,
        }
    }

    /// The per-ant form: ant `i` senses row `sense_of[i]` of
    /// `site_tasks` (rows of `k` entries, concatenated).
    ///
    /// # Panics
    /// If `site_tasks.len()` is not a positive multiple of `k`, or any
    /// row index in `sense_of` is out of range. Checked here, once per
    /// round, so [`SensedRound::view_for`] can stay assert-free in the
    /// per-ant hot loop.
    pub fn from_parts(
        site_tasks: &'a [TaskFeedback],
        sense_of: &'a [u32],
        k: usize,
        round: u64,
    ) -> Self {
        assert!(k > 0, "sensed round with zero tasks");
        assert_eq!(site_tasks.len() % k, 0, "rows must be k entries each");
        let rows = site_tasks.len() / k;
        assert!(rows > 0, "sensed round with zero rows");
        assert!(
            sense_of.iter().all(|&r| (r as usize) < rows),
            "sense row out of range"
        );
        SensedRound {
            site_tasks,
            sense_of,
            k,
            round,
        }
    }

    /// The single shared view, when every ant senses the same row.
    ///
    /// Kernels branch on this: `Some` is the well-mixed fast path (one
    /// view hoisted out of the ant loop — the pre-refactor code path),
    /// `None` means per-ant views via [`SensedRound::view_for`].
    #[inline]
    pub fn shared_view(&self) -> Option<RoundView<'a>> {
        if self.sense_of.is_empty() {
            Some(RoundView {
                tasks: &self.site_tasks[..self.k],
                round: self.round,
            })
        } else {
            None
        }
    }

    /// The view ant `ant` (global id) senses this round.
    #[inline(always)]
    pub fn view_for(&self, ant: u32) -> RoundView<'a> {
        let row = if self.sense_of.is_empty() {
            0
        } else {
            self.sense_of[ant as usize] as usize
        };
        RoundView {
            tasks: &self.site_tasks[row * self.k..(row + 1) * self.k],
            round: self.round,
        }
    }

    /// Number of tasks in every row.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.k
    }

    /// The round these signals describe.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }
}

impl PreparedRound {
    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The round these signals describe.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// A borrowed slice-level view for bank-wise stepping.
    #[inline]
    pub fn view(&self) -> RoundView<'_> {
        RoundView {
            tasks: &self.tasks,
            round: self.round,
        }
    }

    /// Draws the signal for `task` for one ant.
    ///
    /// Each (ant, task) pair must draw **at most once per round** — the
    /// signal is a single random variable. [`crate::FeedbackProbe`]
    /// enforces this in debug builds.
    #[inline(always)]
    pub fn sample(&self, task: usize, rng: &mut AntRng) -> Feedback {
        self.view().sample(task, rng)
    }

    /// The per-task states (for diagnostics and tests).
    pub fn tasks(&self) -> &[TaskFeedback] {
        &self.tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antalloc_rng::Xoshiro256pp;

    fn count_lack(prep: &PreparedRound, task: usize, draws: u32, seed: u64) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let hits = (0..draws)
            .filter(|_| prep.sample(task, &mut rng).is_lack())
            .count();
        hits as f64 / f64::from(draws)
    }

    #[test]
    fn sigmoid_marginals_match_function() {
        let model = NoiseModel::Sigmoid { lambda: 0.3 };
        let deficits = [-10i64, 0, 10];
        let demands = [100u64, 100, 100];
        let prep = model.prepare(1, &deficits, &demands);
        for (j, &delta) in deficits.iter().enumerate() {
            let want = lack_probability(0.3, delta);
            let got = count_lack(&prep, j, 100_000, 42 + j as u64);
            assert!((got - want).abs() < 0.01, "task {j}: got {got} want {want}");
        }
    }

    #[test]
    fn sigmoid_saturates_to_fixed() {
        // A deficit so large the probability quantizes to 1 must become a
        // Fixed signal (and never consume RNG).
        let model = NoiseModel::Sigmoid { lambda: 1.0 };
        let prep = model.prepare(0, &[100_000, -100_000], &[10, 10]);
        assert_eq!(prep.tasks()[0], TaskFeedback::Fixed(Feedback::Lack));
        assert_eq!(prep.tasks()[1], TaskFeedback::Fixed(Feedback::Overload));
    }

    #[test]
    fn exact_model_is_truth() {
        let model = NoiseModel::Exact;
        let prep = model.prepare(0, &[3, 0, -3], &[10, 10, 10]);
        assert_eq!(prep.tasks()[0], TaskFeedback::Fixed(Feedback::Lack));
        assert_eq!(prep.tasks()[1], TaskFeedback::Fixed(Feedback::Lack));
        assert_eq!(prep.tasks()[2], TaskFeedback::Fixed(Feedback::Overload));
        assert!(!model.is_stochastic());
    }

    #[test]
    fn adversarial_truthful_outside_zone() {
        let model = NoiseModel::Adversarial {
            gamma_ad: 0.1,
            policy: GreyZonePolicy::Inverted,
        };
        // demand 100 → zone edge at |Δ| = 10.
        let prep = model.prepare(0, &[11, -11, 5, -5], &[100, 100, 100, 100]);
        assert_eq!(prep.tasks()[0], TaskFeedback::Fixed(Feedback::Lack));
        assert_eq!(prep.tasks()[1], TaskFeedback::Fixed(Feedback::Overload));
        // Inside the zone the Inverted policy lies.
        assert_eq!(prep.tasks()[2], TaskFeedback::Fixed(Feedback::Overload));
        assert_eq!(prep.tasks()[3], TaskFeedback::Fixed(Feedback::Lack));
    }

    #[test]
    fn adversarial_zone_edges_are_inclusive() {
        // Definition: arbitrary value when Δ ∈ [−γd, γd]; the policy
        // applies exactly at the edges.
        let model = NoiseModel::Adversarial {
            gamma_ad: 0.1,
            policy: GreyZonePolicy::AlwaysOverload,
        };
        let prep = model.prepare(0, &[10, -10], &[100, 100]);
        assert_eq!(prep.tasks()[0], TaskFeedback::Fixed(Feedback::Overload));
        assert_eq!(prep.tasks()[1], TaskFeedback::Fixed(Feedback::Overload));
    }

    #[test]
    fn random_policy_samples_inside_zone_only() {
        let model = NoiseModel::Adversarial {
            gamma_ad: 0.2,
            policy: GreyZonePolicy::RandomLack(0.5),
        };
        let prep = model.prepare(0, &[0, 50], &[100, 100]);
        assert!(matches!(prep.tasks()[0], TaskFeedback::Random { .. }));
        assert_eq!(prep.tasks()[1], TaskFeedback::Fixed(Feedback::Lack));
        assert!(model.is_stochastic());
        let freq = count_lack(&prep, 0, 50_000, 7);
        assert!((freq - 0.5).abs() < 0.02);
    }

    #[test]
    fn correlated_marginal_matches_sigmoid() {
        // Average over many (round, task) preparations: the marginal
        // P[lack] must track s(λΔ) even though draws are shared.
        let model = NoiseModel::CorrelatedSigmoid {
            lambda: 0.2,
            rho: 0.7,
            seed: 5,
        };
        let delta = 3i64;
        let want = lack_probability(0.2, delta);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let rounds = 40_000u64;
        let mut lacks = 0u64;
        for r in 0..rounds {
            let prep = model.prepare(r, &[delta], &[100]);
            if prep.sample(0, &mut rng).is_lack() {
                lacks += 1;
            }
        }
        let freq = lacks as f64 / rounds as f64;
        assert!((freq - want).abs() < 0.02, "freq {freq} want {want}");
    }

    #[test]
    fn correlated_shared_rounds_are_deterministic() {
        let model = NoiseModel::CorrelatedSigmoid {
            lambda: 0.2,
            rho: 1.0,
            seed: 5,
        };
        let a = model.prepare(3, &[1], &[100]);
        let b = model.prepare(3, &[1], &[100]);
        assert_eq!(a.tasks()[0], b.tasks()[0]);
        assert!(matches!(a.tasks()[0], TaskFeedback::Fixed(_)));
    }

    #[test]
    fn marginal_probability_reporting() {
        let sig = NoiseModel::Sigmoid { lambda: 0.5 };
        assert_eq!(sig.marginal_lack_probability(0, 10), Some(0.5));
        let adv = NoiseModel::Adversarial {
            gamma_ad: 0.1,
            policy: GreyZonePolicy::AlternateByRound,
        };
        assert_eq!(adv.marginal_lack_probability(100, 100), Some(1.0));
        assert_eq!(adv.marginal_lack_probability(-100, 100), Some(0.0));
        assert_eq!(adv.marginal_lack_probability(0, 100), None);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        NoiseModel::Exact.prepare(0, &[1, 2], &[10]);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        fn any_policy() -> impl Strategy<Value = GreyZonePolicy> {
            prop_oneof![
                Just(GreyZonePolicy::AlwaysLack),
                Just(GreyZonePolicy::AlwaysOverload),
                Just(GreyZonePolicy::Truthful),
                Just(GreyZonePolicy::Inverted),
                Just(GreyZonePolicy::AlternateByRound),
                (0.0f64..=1.0).prop_map(GreyZonePolicy::RandomLack),
            ]
        }

        proptest! {
            /// The §2.2 contract: outside the grey zone the adversary
            /// MUST tell the truth — for every policy, round, deficit.
            #[test]
            fn adversary_never_lies_outside_the_zone(
                policy in any_policy(),
                gamma_ad in 0.01f64..0.5,
                demand in 1u64..100_000,
                deficit in -200_000i64..200_000,
                round in 0u64..1000,
            ) {
                let model = NoiseModel::Adversarial { gamma_ad, policy };
                let prep = model.prepare(round, &[deficit], &[demand]);
                let edge = gamma_ad * demand as f64;
                if (deficit as f64) > edge {
                    prop_assert_eq!(
                        prep.tasks()[0],
                        TaskFeedback::Fixed(Feedback::Lack)
                    );
                } else if (deficit as f64) < -edge {
                    prop_assert_eq!(
                        prep.tasks()[0],
                        TaskFeedback::Fixed(Feedback::Overload)
                    );
                }
            }

            /// Sigmoid preparation is monotone: a larger deficit never
            /// lowers the lack threshold.
            #[test]
            fn sigmoid_thresholds_monotone_in_deficit(
                lambda in 0.01f64..8.0,
                d1 in -10_000i64..10_000,
                d2 in -10_000i64..10_000,
            ) {
                prop_assume!(d1 < d2);
                let model = NoiseModel::Sigmoid { lambda };
                let prep = model.prepare(1, &[d1, d2], &[100, 100]);
                let level = |t: &TaskFeedback| match t {
                    TaskFeedback::Fixed(Feedback::Overload) => 0u128,
                    TaskFeedback::Random { lack_threshold } => {
                        1 + u128::from(*lack_threshold)
                    }
                    TaskFeedback::Fixed(Feedback::Lack) => u128::MAX,
                };
                prop_assert!(level(&prep.tasks()[0]) <= level(&prep.tasks()[1]));
            }

            /// `prepare` is a pure function: same inputs, same state —
            /// the property checkpoint/replay correctness rests on.
            #[test]
            fn prepare_is_deterministic(
                lambda in 0.01f64..8.0,
                rho in 0.0f64..1.0,
                seed: u64,
                round in 0u64..10_000,
                deficit in -1000i64..1000,
            ) {
                let model = NoiseModel::CorrelatedSigmoid { lambda, rho, seed };
                let a = model.prepare(round, &[deficit], &[500]);
                let b = model.prepare(round, &[deficit], &[500]);
                prop_assert_eq!(a.tasks(), b.tasks());
            }
        }
    }
}
