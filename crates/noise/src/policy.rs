//! Grey-zone policies for the adversarial feedback model.
//!
//! §2.2 constrains the adversary only *outside* the grey zone
//! `[−γ_ad·d, γ_ad·d]`, where feedback must be correct; inside it the
//! signal may be "an arbitrary value". Each variant here is one such
//! arbitrary choice. The Theorem 3.5 lower bound is realized by
//! [`GreyZonePolicy::LoadThreshold`], which answers `lack` iff the load is
//! at most a fixed per-task threshold — the construction that makes two
//! different demand vectors produce identical feedback.

use crate::feedback::Feedback;

/// How the adversary answers inside the grey zone.
#[derive(Clone, Debug, PartialEq)]
pub enum GreyZonePolicy {
    /// Always report `lack` inside the zone (pulls ants in).
    AlwaysLack,
    /// Always report `overload` inside the zone (pushes ants out).
    AlwaysOverload,
    /// Report the true sign of the deficit even inside the zone — the
    /// benign case; useful as a control in experiments.
    Truthful,
    /// Report the *opposite* of the truth inside the zone — the most
    /// destabilizing memoryless policy.
    Inverted,
    /// Alternate `lack`/`overload` by round parity inside the zone,
    /// manufacturing maximal oscillation pressure.
    AlternateByRound,
    /// Answer uniformly at random (per ant, i.i.d.) inside the zone with
    /// the given probability of `lack`.
    RandomLack(f64),
    /// Ignore the deficit entirely and answer `lack` iff the task's load
    /// `W` is at most the per-task threshold. Callers must pick thresholds
    /// inside every task's grey zone or [`validate`] will reject them —
    /// this is exactly the Yao-principle adversary of Theorem 3.5.
    ///
    /// [`validate`]: GreyZonePolicy::validate_load_thresholds
    LoadThreshold(Vec<u64>),
}

impl GreyZonePolicy {
    /// Resolves the policy for one task in one round, given the *true*
    /// deficit. Returns `None` if the answer is per-ant random, in which
    /// case the caller samples i.i.d. `lack` with the returned probability
    /// in `Err`-like fashion via [`GreyZonePolicy::random_lack_probability`].
    pub fn fixed_answer(
        &self,
        task: usize,
        round: u64,
        deficit: i64,
        demand: u64,
    ) -> Option<Feedback> {
        match self {
            GreyZonePolicy::AlwaysLack => Some(Feedback::Lack),
            GreyZonePolicy::AlwaysOverload => Some(Feedback::Overload),
            GreyZonePolicy::Truthful => Some(Feedback::truth(deficit)),
            GreyZonePolicy::Inverted => Some(Feedback::truth(deficit).flipped()),
            GreyZonePolicy::AlternateByRound => Some(if round.is_multiple_of(2) {
                Feedback::Lack
            } else {
                Feedback::Overload
            }),
            GreyZonePolicy::RandomLack(_) => None,
            GreyZonePolicy::LoadThreshold(thresholds) => {
                let load = demand as i64 - deficit;
                Some(if load <= thresholds[task] as i64 {
                    Feedback::Lack
                } else {
                    Feedback::Overload
                })
            }
        }
    }

    /// For [`GreyZonePolicy::RandomLack`], the probability of `lack`.
    pub fn random_lack_probability(&self) -> Option<f64> {
        match self {
            GreyZonePolicy::RandomLack(p) => Some(*p),
            _ => None,
        }
    }

    /// Checks that a [`GreyZonePolicy::LoadThreshold`] policy is a *legal*
    /// adversary for the given demands: each threshold must lie inside the
    /// task's grey zone `[d(1−γ_ad), d(1+γ_ad)]` in load units, so that
    /// outside the zone the answer coincides with the truth.
    ///
    /// Returns the offending task index on failure.
    pub fn validate_load_thresholds(&self, gamma_ad: f64, demands: &[u64]) -> Result<(), usize> {
        if let GreyZonePolicy::LoadThreshold(thresholds) = self {
            assert_eq!(thresholds.len(), demands.len(), "one threshold per task");
            for (j, (&theta, &d)) in thresholds.iter().zip(demands).enumerate() {
                let lo = d as f64 * (1.0 - gamma_ad);
                let hi = d as f64 * (1.0 + gamma_ad);
                if (theta as f64) < lo || (theta as f64) > hi {
                    return Err(j);
                }
            }
        }
        Ok(())
    }
}

/// Builds the Theorem 3.5 indistinguishable demand pair for `k` tasks.
///
/// Returns `(d, d_prime, thresholds)` where `d = n/(2k)` per task,
/// `d' = d − 2τ` with `τ = ⌊γ_ad·d/(1+2γ_ad)⌋`, and `thresholds[j] = θ`
/// is simultaneously inside both grey zones, so the
/// [`GreyZonePolicy::LoadThreshold`] adversary with these thresholds is
/// legal for *both* demand vectors while producing identical feedback for
/// every load — the indistinguishability at the heart of the lower bound.
pub fn yao_demand_pair(n: usize, k: usize, gamma_ad: f64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    assert!(k >= 1 && n >= 4 * k, "need n/(2k) ≥ 2 ants per task");
    assert!(gamma_ad > 0.0 && gamma_ad < 1.0);
    let d = (n / (2 * k)) as u64;
    let tau = ((gamma_ad * d as f64) / (1.0 + 2.0 * gamma_ad)).floor() as u64;
    assert!(tau >= 1, "γ_ad·d too small to separate the demand pair");
    let d_prime = d - 2 * tau;
    // θ = d − τ must sit inside both grey zones (in load units):
    //   θ ≥ d(1−γ)      ⟺ τ ≤ γd                  (true: τ ≤ γd/(1+2γ))
    //   θ ≤ d'(1+γ)     ⟺ d−τ ≤ (d−2τ)(1+γ)
    //                   ⟺ τ(1+2γ) ≤ γd             (true by choice of τ)
    //   θ ≥ d'(1−γ)     follows from θ ≥ d(1−γ) > d'(1−γ).
    let theta = d - tau;
    (vec![d; k], vec![d_prime; k], vec![theta; k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_answers_match_intent() {
        let p = GreyZonePolicy::AlwaysLack;
        assert_eq!(p.fixed_answer(0, 0, -3, 10), Some(Feedback::Lack));
        let p = GreyZonePolicy::AlwaysOverload;
        assert_eq!(p.fixed_answer(0, 0, 3, 10), Some(Feedback::Overload));
        let p = GreyZonePolicy::Truthful;
        assert_eq!(p.fixed_answer(0, 0, 3, 10), Some(Feedback::Lack));
        assert_eq!(p.fixed_answer(0, 0, -3, 10), Some(Feedback::Overload));
        let p = GreyZonePolicy::Inverted;
        assert_eq!(p.fixed_answer(0, 0, 3, 10), Some(Feedback::Overload));
        let p = GreyZonePolicy::AlternateByRound;
        assert_eq!(p.fixed_answer(0, 2, 0, 10), Some(Feedback::Lack));
        assert_eq!(p.fixed_answer(0, 3, 0, 10), Some(Feedback::Overload));
        assert_eq!(
            GreyZonePolicy::RandomLack(0.3).fixed_answer(0, 0, 0, 10),
            None
        );
        assert_eq!(
            GreyZonePolicy::RandomLack(0.3).random_lack_probability(),
            Some(0.3)
        );
    }

    #[test]
    fn load_threshold_answers_by_load() {
        let p = GreyZonePolicy::LoadThreshold(vec![100]);
        // load = demand − deficit.
        assert_eq!(p.fixed_answer(0, 0, 0, 100), Some(Feedback::Lack)); // W=100
        assert_eq!(p.fixed_answer(0, 0, -1, 100), Some(Feedback::Overload)); // W=101
        assert_eq!(p.fixed_answer(0, 0, 40, 100), Some(Feedback::Lack)); // W=60
    }

    #[test]
    fn threshold_validation() {
        let demands = [100u64];
        let ok = GreyZonePolicy::LoadThreshold(vec![95]);
        assert_eq!(ok.validate_load_thresholds(0.1, &demands), Ok(()));
        let low = GreyZonePolicy::LoadThreshold(vec![80]);
        assert_eq!(low.validate_load_thresholds(0.1, &demands), Err(0));
        let high = GreyZonePolicy::LoadThreshold(vec![111]);
        assert_eq!(high.validate_load_thresholds(0.1, &demands), Err(0));
        // Non-threshold policies always validate.
        assert_eq!(
            GreyZonePolicy::AlwaysLack.validate_load_thresholds(0.1, &demands),
            Ok(())
        );
    }

    #[test]
    fn yao_pair_small_example() {
        let (d, dp, theta) = yao_demand_pair(4000, 2, 0.25);
        assert_eq!(d, vec![1000, 1000]);
        // τ = ⌊0.25·1000/1.5⌋ = 166; d' = 1000 − 332 = 668; θ = 834.
        assert_eq!(dp, vec![668, 668]);
        assert_eq!(theta, vec![834, 834]);
    }

    proptest! {
        /// The Yao thresholds are legal adversaries for BOTH demand
        /// vectors — the indistinguishability precondition of Thm 3.5.
        #[test]
        fn yao_pair_is_doubly_legal(
            n in 64usize..1_000_000,
            k in 1usize..8,
            gamma in 0.05f64..0.9,
        ) {
            prop_assume!(n >= 4 * k);
            let d_base = (n / (2 * k)) as f64;
            prop_assume!(gamma * d_base / (1.0 + gamma) >= 1.0);
            let (d, dp, theta) = yao_demand_pair(n, k, gamma);
            let policy = GreyZonePolicy::LoadThreshold(theta);
            prop_assert_eq!(policy.validate_load_thresholds(gamma, &d), Ok(()));
            prop_assert_eq!(policy.validate_load_thresholds(gamma, &dp), Ok(()));
            // Demand separation 2τ is positive and d' stays positive.
            prop_assert!(dp[0] >= 1);
            prop_assert!(dp[0] < d[0]);
        }

        /// For any load, the threshold adversary gives the same answer
        /// regardless of which demand vector generated the deficit.
        #[test]
        fn yao_pair_feedback_is_identical(
            n in 64usize..100_000,
            gamma in 0.05f64..0.9,
            load in 0u64..200_000,
        ) {
            let k = 1usize;
            prop_assume!(n >= 4 * k);
            let d_base = (n / (2 * k)) as f64;
            prop_assume!(gamma * d_base / (1.0 + gamma) >= 1.0);
            let (d, dp, theta) = yao_demand_pair(n, k, gamma);
            let policy = GreyZonePolicy::LoadThreshold(theta);
            let fb_d = policy.fixed_answer(0, 0, d[0] as i64 - load as i64, d[0]);
            let fb_dp = policy.fixed_answer(0, 0, dp[0] as i64 - load as i64, dp[0]);
            prop_assert_eq!(fb_d, fb_dp);
        }
    }
}
