//! The critical feedback value `γ*` and grey zones (Definition 2.3).
//!
//! `γ*` is the smallest deficit-to-demand ratio at which *every* ant
//! receives the correct signal with probability `1 − n^{−q}` (the paper
//! fixes `q = 8`). Below that ratio — inside the *grey zone*
//! `[−γ*·d, γ*·d]` — feedback is unreliable and the paper shows
//! oscillations are unavoidable.

use crate::sigmoid::logistic;

/// The exponent `q` in the paper's `1/n^8` reliability target.
pub const PAPER_RELIABILITY_EXPONENT: f64 = 8.0;

/// A computed critical value together with the inputs that produced it,
/// so experiment tables can echo their provenance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CriticalValue {
    /// The critical ratio `γ*`.
    pub gamma_star: f64,
    /// The smallest demand, which determines `γ*` for sigmoid noise.
    pub d_min: u64,
    /// The reliability exponent `q` used (`8` in the paper).
    pub exponent: f64,
}

/// Critical value for the sigmoid model.
///
/// Definition 2.3 asks for the smallest `γ` with
/// `s(−γ·d(j)) ≤ n^{−q}` for all `j`; solving
/// `1/(1 + e^{λγd}) = n^{−q}` gives `γ* = ln(n^q − 1)/(λ·d_min)`.
///
/// # Panics
/// Panics if `lambda ≤ 0`, `n < 2`, or `demands` is empty or contains 0.
pub fn critical_value_sigmoid(
    lambda: f64,
    n: usize,
    demands: &[u64],
    exponent: f64,
) -> CriticalValue {
    assert!(lambda > 0.0, "sigmoid steepness must be positive");
    assert!(n >= 2, "need at least two ants for n^q - 1 > 0");
    let d_min = *demands.iter().min().expect("at least one task");
    assert!(d_min > 0, "demands must be positive");
    // ln(n^q − 1): for n^q above ~1e15 the −1 is below f64 resolution, so
    // use q·ln(n) directly and avoid overflowing n^q for large n.
    let q_ln_n = exponent * (n as f64).ln();
    let ln_term = if q_ln_n > 34.0 {
        q_ln_n
    } else {
        (q_ln_n.exp() - 1.0).ln()
    };
    CriticalValue {
        gamma_star: ln_term / (lambda * d_min as f64),
        d_min,
        exponent,
    }
}

/// Critical value for the adversarial model: by Definition 2.3 it is the
/// adversary's own threshold `γ_ad`.
pub fn critical_value_adversarial(gamma_ad: f64) -> CriticalValue {
    CriticalValue {
        gamma_star: gamma_ad,
        d_min: 0,
        exponent: f64::NAN,
    }
}

/// The grey zone `g_j = [−γ*·d(j), γ*·d(j)]` of a task (in deficit units).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GreyZone {
    /// Lower deficit bound `−γ*·d(j)`.
    pub lo: f64,
    /// Upper deficit bound `γ*·d(j)`.
    pub hi: f64,
}

impl GreyZone {
    /// The grey zone for a task with demand `d` under critical ratio `γ`.
    #[inline]
    pub fn of(gamma: f64, demand: u64) -> Self {
        let half = gamma * demand as f64;
        Self {
            lo: -half,
            hi: half,
        }
    }

    /// True iff `deficit` lies strictly inside the zone.
    #[inline]
    pub fn contains(&self, deficit: i64) -> bool {
        let d = deficit as f64;
        d > self.lo && d < self.hi
    }

    /// Width of the zone in ants (`2γd`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl CriticalValue {
    /// Probability of *incorrect* feedback exactly at the grey-zone edge,
    /// for a task of demand `d` under sigmoid steepness `lambda`. By
    /// construction this is ≤ `n^{−q}`, with equality at `d = d_min`.
    pub fn edge_error_probability(&self, lambda: f64, demand: u64) -> f64 {
        logistic(-lambda * self.gamma_star * demand as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn closed_form_matches_definition() {
        // For moderate n, check s(−γ*·d_min) == n^{−q} numerically.
        let n = 1000;
        let lambda = 0.2;
        let demands = [120u64, 300, 80];
        let cv = critical_value_sigmoid(lambda, n, &demands, 8.0);
        let p = cv.edge_error_probability(lambda, cv.d_min);
        let target = (n as f64).powf(-8.0);
        assert!(
            (p - target).abs() / target < 1e-6,
            "p={p:e} target={target:e}"
        );
        assert_eq!(cv.d_min, 80);
    }

    #[test]
    fn larger_demands_have_smaller_edge_error() {
        let cv = critical_value_sigmoid(0.2, 1000, &[80, 300], 8.0);
        assert!(cv.edge_error_probability(0.2, 300) < cv.edge_error_probability(0.2, 80));
    }

    #[test]
    fn large_n_path_is_continuous_with_small_n_path() {
        // q·ln n just below and above the 34.0 switch must agree closely.
        let lambda = 0.1;
        let demands = [500u64];
        // Find n so q ln n ~ 34: q=8 → ln n = 4.25 → n ≈ 70.
        let lo = critical_value_sigmoid(lambda, 69, &demands, 8.0).gamma_star;
        let hi = critical_value_sigmoid(lambda, 71, &demands, 8.0).gamma_star;
        assert!((hi - lo).abs() / lo < 0.01);
    }

    #[test]
    fn adversarial_critical_is_gamma_ad() {
        assert_eq!(critical_value_adversarial(0.07).gamma_star, 0.07);
    }

    #[test]
    fn grey_zone_membership() {
        let z = GreyZone::of(0.1, 100); // [-10, 10]
        assert!(z.contains(0));
        assert!(z.contains(9));
        assert!(z.contains(-9));
        assert!(!z.contains(10));
        assert!(!z.contains(-10));
        assert_eq!(z.width(), 20.0);
    }

    #[test]
    #[should_panic(expected = "steepness")]
    fn rejects_nonpositive_lambda() {
        critical_value_sigmoid(0.0, 100, &[10], 8.0);
    }

    proptest! {
        /// γ* decreases in λ (sharper sigmoid → smaller grey zone) and in
        /// d_min (bigger tasks → relatively smaller zone).
        #[test]
        fn monotonicity(
            lambda in 0.01f64..2.0,
            n in 10usize..100_000,
            d in 10u64..100_000,
        ) {
            let base = critical_value_sigmoid(lambda, n, &[d], 8.0).gamma_star;
            let sharper = critical_value_sigmoid(lambda * 2.0, n, &[d], 8.0).gamma_star;
            let bigger = critical_value_sigmoid(lambda, n, &[d * 2], 8.0).gamma_star;
            prop_assert!(sharper < base);
            prop_assert!(bigger < base);
            prop_assert!(base > 0.0);
        }

        /// Outside the grey zone the error probability is at most n^{−q}.
        #[test]
        fn outside_zone_error_is_bounded(
            lambda in 0.05f64..1.0,
            n in 10usize..10_000,
            d in 50u64..10_000,
            slack in 1.0f64..3.0,
        ) {
            let cv = critical_value_sigmoid(lambda, n, &[d], 8.0);
            // A deficit `slack` times the edge: error must be ≤ n^{-8}.
            let deficit = (cv.gamma_star * d as f64 * slack).ceil();
            let p_err = crate::sigmoid::logistic(-lambda * deficit);
            prop_assert!(p_err <= (n as f64).powf(-8.0) * (1.0 + 1e-9));
        }
    }
}
