//! The logistic sigmoid and its use as a feedback probability.
//!
//! The paper models the probability of receiving `lack` for a task with
//! deficit `Δ` as `s(Δ) = 1/(1 + e^{−λΔ})` for a fixed steepness `λ`.
//! All results only need `s` to be monotone, antisymmetric around
//! `s(0) = 1/2` and exponentially decaying — properties the tests below
//! pin down.

/// Numerically stable logistic function `1/(1 + e^{−x})`.
///
/// Evaluates via the branch that keeps the exponent non-positive, so it
/// never overflows and is exact to f64 rounding over the whole line.
#[inline]
pub fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of [`logistic`]: `ln(p / (1−p))`.
///
/// Returns `±∞` at the endpoints and NaN outside `[0, 1]`.
#[inline]
pub fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

/// Probability that an ant receives `lack` for a task with the given
/// deficit, under sigmoid noise with steepness `lambda`.
///
/// This is `s(λ·Δ)` — the deficit is taken in whole ants, matching the
/// paper's `s(Δ_{t−1})` with `λ` folded into the function.
#[inline]
pub fn lack_probability(lambda: f64, deficit: i64) -> f64 {
    logistic(lambda * deficit as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn midpoint_is_half() {
        // Axiom (§2.2): at deficit 0 the uncertainty is maximal.
        assert_eq!(lack_probability(0.5, 0), 0.5);
        assert_eq!(logistic(0.0), 0.5);
    }

    #[test]
    fn saturates_without_overflow() {
        assert_eq!(logistic(1e9), 1.0);
        assert_eq!(logistic(-1e9), 0.0);
        assert!(logistic(-745.0) > 0.0 || logistic(-745.0) == 0.0);
        assert!(!logistic(f64::MIN).is_nan());
    }

    #[test]
    fn known_values() {
        // s(ln 3) = 3/4 exactly in real arithmetic.
        let x = 3.0f64.ln();
        assert!((logistic(x) - 0.75).abs() < 1e-12);
        assert!((logistic(-x) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn logit_inverts_logistic() {
        for &p in &[1e-9, 0.1, 0.25, 0.5, 0.9, 1.0 - 1e-9] {
            let x = logit(p);
            assert!((logistic(x) - p).abs() < 1e-9, "p={p}");
        }
        assert_eq!(logit(0.0), f64::NEG_INFINITY);
        assert_eq!(logit(1.0), f64::INFINITY);
    }

    proptest! {
        /// Antisymmetry: s(−x) = 1 − s(x) (Definition 2.3 relies on it).
        #[test]
        fn antisymmetric(x in -700.0f64..700.0) {
            let lhs = logistic(-x);
            let rhs = 1.0 - logistic(x);
            prop_assert!((lhs - rhs).abs() < 1e-12);
        }

        /// Monotonicity in the deficit.
        #[test]
        fn monotone(a in -1_000i64..1_000, b in -1_000i64..1_000) {
            prop_assume!(a < b);
            let pa = lack_probability(0.3, a);
            let pb = lack_probability(0.3, b);
            prop_assert!(pa <= pb);
        }

        /// Output is always a probability.
        #[test]
        fn in_unit_interval(x in proptest::num::f64::NORMAL) {
            let p = logistic(x);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        /// Exponential decay: for x ≥ 0, s(−x) ≤ e^{−x}.
        #[test]
        fn exponential_tail(x in 0.0f64..700.0) {
            prop_assert!(logistic(-x) <= (-x).exp() + 1e-12);
        }
    }
}
