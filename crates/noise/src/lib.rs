//! Noisy feedback models from §2.2 of *Self-Stabilizing Task Allocation
//! In Spite of Noise* (SPAA 2020).
//!
//! Every round, each ant receives — independently, per task — a binary
//! signal [`Feedback::Lack`] or [`Feedback::Overload`] about the task's
//! deficit `Δ = d − W`. This crate implements all the feedback generators
//! the paper uses:
//!
//! * [`NoiseModel::Sigmoid`] — `P[lack] = s(Δ) = 1/(1+e^{−λΔ})`, the
//!   paper's primary stochastic model.
//! * [`NoiseModel::Adversarial`] — deterministic truth outside the grey
//!   zone `[−γ_ad·d, γ_ad·d]`, an arbitrary [`GreyZonePolicy`] inside it;
//!   includes the Theorem 3.5 load-threshold (Yao) adversary.
//! * [`NoiseModel::CorrelatedSigmoid`] — Remark 3.4: feedback whose
//!   marginals match the sigmoid but which is correlated across ants.
//! * [`NoiseModel::Exact`] — the noise-free binary feedback of Cornejo
//!   et al. \[11\], used by the baseline experiments.
//!
//! The sampling path is allocation-free: [`NoiseModel::prepare`] folds a
//! round's deficits into per-task sampling state ([`PreparedRound`]), and
//! each draw is one generator call plus a compare.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod critical;
mod feedback;
mod model;
mod policy;
mod probe;
mod sigmoid;

pub use critical::{
    critical_value_adversarial, critical_value_sigmoid, CriticalValue, GreyZone,
    PAPER_RELIABILITY_EXPONENT,
};
pub use feedback::Feedback;
pub use model::{NoiseModel, PreparedRound, RoundView, SensedRound, TaskFeedback};
pub use policy::{yao_demand_pair, GreyZonePolicy};
pub use probe::FeedbackProbe;
pub use sigmoid::{lack_probability, logistic, logit};
