//! The binary feedback signal.

/// The feedback an ant receives about one task (the paper's "task
/// stimulus"): the task either lacks workers or is overloaded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// Too few workers (the deficit `Δ = d − W` is perceived positive).
    Lack,
    /// Too many workers (the deficit is perceived negative).
    Overload,
}

impl Feedback {
    /// The noise-free signal for a deficit: `Lack` iff `Δ ≥ 0`.
    ///
    /// The `Δ = 0` case maps to `Lack`, matching \[11\] where a task at
    /// exactly its demand reports `lack` ("load below *or equal to* the
    /// demand").
    #[inline]
    pub fn truth(deficit: i64) -> Self {
        if deficit >= 0 {
            Feedback::Lack
        } else {
            Feedback::Overload
        }
    }

    /// The opposite signal.
    #[inline]
    pub fn flipped(self) -> Self {
        match self {
            Feedback::Lack => Feedback::Overload,
            Feedback::Overload => Feedback::Lack,
        }
    }

    /// True iff this signal is `Lack`.
    #[inline]
    pub fn is_lack(self) -> bool {
        matches!(self, Feedback::Lack)
    }
}

impl core::fmt::Display for Feedback {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Feedback::Lack => f.write_str("lack"),
            Feedback::Overload => f.write_str("overload"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_sign_convention() {
        assert_eq!(Feedback::truth(5), Feedback::Lack);
        assert_eq!(Feedback::truth(0), Feedback::Lack);
        assert_eq!(Feedback::truth(-1), Feedback::Overload);
    }

    #[test]
    fn flip_is_involution() {
        for f in [Feedback::Lack, Feedback::Overload] {
            assert_eq!(f.flipped().flipped(), f);
            assert_ne!(f.flipped(), f);
        }
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(Feedback::Lack.to_string(), "lack");
        assert_eq!(Feedback::Overload.to_string(), "overload");
    }
}
