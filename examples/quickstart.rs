//! Quickstart: build a noisy colony, run Algorithm Ant, watch it settle.
//!
//! ```text
//! cargo run --release -p colony-examples --example quickstart
//! ```

use antalloc_core::AntParams;
use antalloc_noise::{critical_value_sigmoid, NoiseModel};
use antalloc_sim::{ControllerSpec, FnObserver, SimConfig};
use colony_examples::{bar, fmt_deficits};

fn main() {
    // A colony of 4000 ants, three tasks, sigmoid feedback.
    let n = 4000;
    let demands = vec![400u64, 700, 300];
    let lambda = 2.0;
    let gamma = 1.0 / 16.0;

    let cv = critical_value_sigmoid(lambda, n, &demands, 2.0);
    println!("n = {n}, demands = {demands:?}, λ = {lambda}, γ = {gamma:.4}");
    println!("critical value γ* ≈ {:.4} (reliability exponent 2)\n", cv.gamma_star);

    let config = SimConfig::new(
        n,
        demands.clone(),
        NoiseModel::Sigmoid { lambda },
        ControllerSpec::Ant(AntParams::new(gamma)),
        0xC0FFEE,
    );
    let mut engine = config.build();

    println!("{:>6}  {:>24}  {:>10}  loads", "round", "deficits", "regret");
    let mut engine_obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        if r.round % 250 == 0 || r.round <= 2 {
            let bars: Vec<String> = r
                .loads
                .iter()
                .zip(r.demands)
                .map(|(&w, &d)| format!("{} {w}/{d}", bar(f64::from(w), d as f64 * 1.5, 12)))
                .collect();
            println!(
                "{:>6}  {:>24}  {:>10}  {}",
                r.round,
                fmt_deficits(r.deficits),
                r.instant_regret(),
                bars.join("  ")
            );
        }
    });
    engine.run(3000, &mut engine_obs);

    let final_regret = engine.colony().instant_regret();
    println!("\nfinal regret: {final_regret} (≈5γΣd bound: {:.0})", {
        let sum: u64 = demands.iter().sum();
        5.0 * gamma * sum as f64 + 3.0
    });
}
