//! Quickstart: declare a scenario, validate it, run it, sweep it.
//!
//! ```text
//! cargo run --release -p colony-examples --example quickstart
//! ```
//!
//! The flow this example walks through is the crate's intended one:
//!
//! 1. declare the scenario in TOML (a file in real use — inline here),
//! 2. load + validate it (`Scenario::from_toml`; typos and bad
//!    parameters come back as typed `ConfigError`s, not panics),
//! 3. run it once and watch the colony settle,
//! 4. fan the same scenario out over a seed batch on worker threads.
//!
//! The builder API (`SimConfig::builder(..)`) is the programmatic
//! equivalent of step 1 — both produce the same validated `SimConfig`.

use antalloc_noise::critical_value_sigmoid;
use antalloc_sim::{Batch, FnObserver, Scenario};
use colony_examples::{bar, fmt_deficits};

const SCENARIO: &str = r#"
name = "quickstart"
n = 4000
demands = [400, 700, 300]
seed = 12648430            # 0xC0FFEE

[controller]
kind = "ant"               # §4 Algorithm Ant
gamma = 0.0625             # γ = 1/16

[noise]
kind = "sigmoid"           # P[lack] = s(λΔ)
lambda = 2.0
"#;

fn main() {
    // 1–2. Parse and validate the declarative scenario.
    let scenario = Scenario::from_toml(SCENARIO).expect("scenario validates");
    let config = scenario.config.clone();
    let gamma = 1.0 / 16.0;
    let sum_d: u64 = config.demands.iter().sum();

    let cv = critical_value_sigmoid(2.0, config.n, &config.demands, 2.0);
    println!(
        "scenario `{}`: n = {}, demands = {:?}, seed = {:#x}",
        scenario.name.as_deref().unwrap_or("?"),
        config.n,
        config.demands,
        config.seed
    );
    println!(
        "critical value γ* ≈ {:.4} ≤ γ = {gamma:.4}\n",
        cv.gamma_star
    );

    // A malformed scenario is a typed error, not a panic:
    let broken = Scenario::from_toml(&SCENARIO.replace("[400, 700, 300]", "[]"));
    println!(
        "empty demand vector rejected with: {}\n",
        broken.unwrap_err()
    );

    // 3. Run once, watching the deficits shrink.
    let mut engine = config.build();
    println!(
        "{:>6}  {:>24}  {:>10}  loads",
        "round", "deficits", "regret"
    );
    let mut engine_obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        if r.round.is_multiple_of(250) || r.round <= 2 {
            let bars: Vec<String> = r
                .loads
                .iter()
                .zip(r.demands)
                .map(|(&w, &d)| format!("{} {w}/{d}", bar(f64::from(w), d as f64 * 1.5, 12)))
                .collect();
            println!(
                "{:>6}  {:>24}  {:>10}  {}",
                r.round,
                fmt_deficits(r.deficits),
                r.instant_regret(),
                bars.join("  ")
            );
        }
    });
    engine.run(3000, &mut engine_obs);

    let final_regret = engine.colony().instant_regret();
    println!(
        "\nfinal regret: {final_regret} (≈5γΣd + 3 bound: {:.0})",
        5.0 * gamma * sum_d as f64 + 3.0
    );

    // 4. The theorem is a statement over runs, so measure a batch: the
    // same scenario across 8 seeds, fanned over worker threads, each
    // run bit-identical to a serial run of that seed.
    let outcomes = Batch::new(config, 1000)
        .seeds(0..8)
        .warmup(2000)
        .run()
        .expect("valid scenario");
    println!("\n8-seed batch (1000 measured rounds each after warmup):");
    println!("{:>6} {:>12} {:>12}", "seed", "avg regret", "max regret");
    for o in &outcomes {
        println!(
            "{:>6} {:>12.1} {:>12}",
            o.seed,
            o.summary.average_regret(),
            o.summary.max_instant_regret()
        );
    }
    let mean = outcomes
        .iter()
        .map(|o| o.summary.average_regret())
        .sum::<f64>()
        / outcomes.len() as f64;
    println!(
        "\nmean over seeds: {mean:.1} — the distributional quantity \
         Theorem 3.1 actually bounds."
    );
}
