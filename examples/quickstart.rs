//! Quickstart: declare a scenario, validate it, run it, sweep it, mix it.
//!
//! ```text
//! cargo run --release -p colony-examples --example quickstart
//! ```
//!
//! The flow this example walks through is the crate's intended one:
//!
//! 1. declare the scenario in TOML (a file in real use — inline here),
//! 2. load + validate it (`Scenario::from_toml`; typos and bad
//!    parameters come back as typed `ConfigError`s, not panics),
//! 3. run it once and watch the colony settle,
//! 4. fan the same scenario out over a seed batch on worker threads,
//!    streaming each run's row to a CSV sink as it completes,
//! 5. race algorithms against each other *inside one colony* with a
//!    `kind = "mix"` controller and read the per-bank census,
//! 6. script mid-run shocks — population kills, demand steps, noise
//!    switches — as `[[timeline]]` events in the same file.
//!
//! The builder API (`SimConfig::builder(..)`) is the programmatic
//! equivalent of step 1 — both produce the same validated `SimConfig`.
//!
//! Under the hood the engine is bank-based: all ants of one controller
//! kind live in a contiguous homogeneous bank stepped in a monomorphic
//! loop (a mixed colony is simply several banks over one colony), and
//! every stepping path — serial, `run_parallel`, checkpoint-restore —
//! is bit-identical for a fixed config and seed.

use antalloc_noise::critical_value_sigmoid;
use antalloc_sim::{Batch, CsvSink, FnObserver, NullObserver, RunSink as _, Scenario};
use colony_examples::{bar, fmt_deficits};

const SCENARIO: &str = r#"
name = "quickstart"
n = 4000
demands = [400, 700, 300]
seed = 12648430            # 0xC0FFEE

[controller]
kind = "ant"               # §4 Algorithm Ant
gamma = 0.0625             # γ = 1/16

[noise]
kind = "sigmoid"           # P[lack] = s(λΔ)
lambda = 2.0
"#;

fn main() {
    // 1–2. Parse and validate the declarative scenario.
    let scenario = Scenario::from_toml(SCENARIO).expect("scenario validates");
    let config = scenario.config.clone();
    let gamma = 1.0 / 16.0;
    let sum_d: u64 = config.demands.iter().sum();

    let cv = critical_value_sigmoid(2.0, config.n, &config.demands, 2.0);
    println!(
        "scenario `{}`: n = {}, demands = {:?}, seed = {:#x}",
        scenario.name.as_deref().unwrap_or("?"),
        config.n,
        config.demands,
        config.seed
    );
    println!(
        "critical value γ* ≈ {:.4} ≤ γ = {gamma:.4}\n",
        cv.gamma_star
    );

    // A malformed scenario is a typed error, not a panic:
    let broken = Scenario::from_toml(&SCENARIO.replace("[400, 700, 300]", "[]"));
    println!(
        "empty demand vector rejected with: {}\n",
        broken.unwrap_err()
    );

    // 3. Run once, watching the deficits shrink.
    let mut engine = config.build();
    println!(
        "{:>6}  {:>24}  {:>10}  loads",
        "round", "deficits", "regret"
    );
    let mut engine_obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        if r.round.is_multiple_of(250) || r.round <= 2 {
            let bars: Vec<String> = r
                .loads
                .iter()
                .zip(r.demands)
                .map(|(&w, &d)| format!("{} {w}/{d}", bar(f64::from(w), d as f64 * 1.5, 12)))
                .collect();
            println!(
                "{:>6}  {:>24}  {:>10}  {}",
                r.round,
                fmt_deficits(r.deficits),
                r.instant_regret(),
                bars.join("  ")
            );
        }
    });
    engine.run(3000, &mut engine_obs);

    let final_regret = engine.colony().instant_regret();
    println!(
        "\nfinal regret: {final_regret} (≈5γΣd + 3 bound: {:.0})",
        5.0 * gamma * sum_d as f64 + 3.0
    );

    // 4. The theorem is a statement over runs, so measure a batch: the
    // same scenario across 8 seeds, fanned over worker threads, each
    // run bit-identical to a serial run of that seed. Streaming each
    // outcome through a `RunSink` as it completes keeps memory flat —
    // the same call shape scales to million-run sweeps (there is a
    // JSONL sink too, and `threads_per_job(t)` lets huge-colony jobs
    // parallelize internally; batch-level parallelism comes first).
    let mut sink = CsvSink::new(Vec::new());
    let outcomes = Batch::new(config, 1000)
        .seeds(0..8)
        .warmup(2000)
        .run_with(|o| sink.on_outcome(o).expect("csv write"))
        .expect("valid scenario");
    println!("\n8-seed batch (1000 measured rounds each after warmup):");
    println!("{:>6} {:>12} {:>12}", "seed", "avg regret", "max regret");
    for o in &outcomes {
        println!(
            "{:>6} {:>12.1} {:>12}",
            o.seed,
            o.summary.average_regret(),
            o.summary.max_instant_regret()
        );
    }
    let mean = outcomes
        .iter()
        .map(|o| o.summary.average_regret())
        .sum::<f64>()
        / outcomes.len() as f64;
    println!(
        "\nmean over seeds: {mean:.1} — the distributional quantity \
         Theorem 3.1 actually bounds."
    );
    sink.finish().expect("flush csv sink");
    let csv = String::from_utf8(sink.into_inner()).expect("utf8 csv");
    println!(
        "\nCSV sink captured {} rows (first: {})",
        csv.lines().count() - 1,
        csv.lines().nth(1).unwrap_or("-")
    );

    // 5. Heterogeneous colonies: race §4 Ant against the exact-feedback
    // greedy baseline inside ONE colony. Membership is a deterministic
    // seeded split of the weights, so mixed runs reproduce exactly.
    let mixed = Scenario::from_toml(MIXED_SCENARIO).expect("mixed scenario validates");
    let mut engine = mixed.config.build();
    engine.run(4000, &mut NullObserver);
    println!(
        "\nmixed colony `{}` after 4000 rounds (regret {}):",
        mixed.name.as_deref().unwrap_or("?"),
        engine.colony().instant_regret()
    );
    for b in engine.bank_census() {
        println!(
            "  {:<12} {:>5} ants, {:>5} working",
            match b.spec {
                antalloc_sim::ControllerSpec::Ant(_) => "ant",
                antalloc_sim::ControllerSpec::ExactGreedy(_) => "greedy",
                _ => "other",
            },
            b.ants,
            b.working
        );
    }
    println!(
        "the census shows how the work splits between sub-populations \
         — the fast-joining\ngreedy fraction grabs slots, the Ant \
         fraction holds its band under noise\n(see `exp_mixed_colony` \
         for the full grid and the regret comparison)."
    );

    // 6. Scripted shocks: the environment's dynamics are scenario data
    // too. A `[[timeline]]` block per event scripts kills, spawns,
    // demand steps, scrambles and noise-regime switches; the engine
    // fires each at the start of its round from reserved RNG streams,
    // so the run stays a pure function of (config, seed) — serial,
    // `run_parallel`, `Batch` and checkpoint-restore all replay the
    // shocks bit-identically. (`exp_recovery_transient` races every
    // controller through such a script and tabulates the transients.)
    let shocked = Scenario::from_toml(SHOCK_SCENARIO).expect("shock scenario validates");
    let mut engine = shocked.config.build();
    println!(
        "\nscripted shocks (`{}`):",
        shocked.name.as_deref().unwrap_or("?")
    );
    let mut shock_obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        if matches!(r.round, 500 | 1000 | 1500) || r.round.is_multiple_of(2000) {
            let n: u64 = r.idle + r.loads.iter().map(|&w| u64::from(w)).sum::<u64>();
            println!(
                "  round {:>5}: n = {n:<5} demands = {:?} regret = {}",
                r.round,
                r.demands,
                r.instant_regret()
            );
        }
    });
    engine.run(6000, &mut shock_obs);
    println!(
        "the colony re-converges after every scripted event — \
         Theorem 3.1's\nself-stabilization, reproducible from a config file.\n\
         (Shocks can also be *triggered* by colony state or drawn from \
         seeded random\nschedules — see docs/SCENARIOS.md and \
         `exp_adversarial_robustness`.)"
    );
}

/// A shock script: lose a third of the colony, then flip the demands,
/// then scramble every assignment — all declarative.
const SHOCK_SCENARIO: &str = r#"
name = "quickstart-shocks"
n = 3000
demands = [400, 600]
seed = 99

[controller]
kind = "ant"
gamma = 0.0625

[noise]
kind = "sigmoid"
lambda = 2.0

[[timeline]]
at = 1000
kind = "kill"
count = 1000

[[timeline]]
at = 2000
kind = "set-demands"
demands = [600, 400]

[[timeline]]
at = 4000
kind = "scramble"
"#;

const MIXED_SCENARIO: &str = r#"
name = "quickstart-mix"
n = 2000
demands = [500]
seed = 7

[controller]
kind = "mix"               # weighted sub-populations, one colony
parts = [
    { weight = 1.0, controller = { kind = "ant", gamma = 0.0625 } },
    { weight = 1.0, controller = { kind = "exact-greedy" } },
]

[noise]
kind = "sigmoid"
lambda = 2.0
"#;
