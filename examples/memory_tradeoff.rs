//! Theorems 3.2 + 3.3 in miniature: more memory (finer ε) buys lower
//! regret, at the price of longer phases.
//!
//! ```text
//! cargo run --release -p colony-examples --example memory_tradeoff
//! ```

use antalloc_core::PreciseSigmoidParams;
use antalloc_env::InitialConfig;
use antalloc_noise::{critical_value_sigmoid, NoiseModel};
use antalloc_sim::{ControllerSpec, RunSummary, SimConfig};

fn main() {
    let n = 3000;
    let demands = vec![600u64, 400];
    let lambda = 4.0;
    let gamma = 0.04;
    let cv = critical_value_sigmoid(lambda, n, &demands, 2.0);
    let sum_d: u64 = demands.iter().sum();
    println!(
        "γ = {gamma}, γ*(q=2) ≈ {:.4}, Σd = {sum_d}\n",
        cv.gamma_star
    );
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>14} {:>12}",
        "ε", "phase", "memory bits", "avg regret", "paper γεΣd", "ratio"
    );

    for eps in [0.8, 0.4, 0.2, 0.1] {
        let params = PreciseSigmoidParams::new(gamma, eps);
        let config = SimConfig::builder(n, demands.clone())
            .noise(NoiseModel::Sigmoid { lambda })
            .controller(ControllerSpec::PreciseSigmoid(params))
            .seed(0xE5)
            // Start saturated: Theorem 3.2 is about the perpetual rate,
            // and the tiny step size makes cold-start transients long.
            .initial(InitialConfig::Saturated)
            .build()
            .expect("valid scenario");
        let mut engine = config.build();
        let phase = params.phase_len();
        let mut warmup = RunSummary::new();
        engine.run(40 * phase, &mut warmup);
        let mut steady = RunSummary::new();
        engine.run(120 * phase, &mut steady);
        let paper = gamma * eps * sum_d as f64;
        let measured = steady.average_regret();
        println!(
            "{eps:>6} {phase:>8} {:>12} {measured:>14.2} {paper:>14.2} {:>12.2}",
            engine.controller_memory_bits(),
            measured / paper
        );
    }
    println!("\nLinear-in-ε regret at logarithmic memory cost: Theorem 3.2's tradeoff.");
}
