//! Self-stabilization live: demands jump mid-run, the colony re-converges.
//!
//! The paper (§2.1, §6): "our results trivially extend to changing
//! demands due to the self-stabilizing nature of our algorithms."
//!
//! ```text
//! cargo run --release -p colony-examples --example demand_shift
//! ```

use antalloc_core::AntParams;
use antalloc_env::Event;
use antalloc_metrics::SaturationDetector;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, FnObserver, SimConfig};

fn main() {
    let gamma = 1.0 / 16.0;
    // Demand changes are ordinary timeline events (`set-demands` in
    // scenario files); the legacy `DemandSchedule` survives only as a
    // `From<>` shim onto the same events.
    let config = SimConfig::builder(6000, vec![800, 1200])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(gamma)))
        .seed(42)
        // At round 4000 the environment flips the two demands; at 8000
        // both shrink (a "cold snap": less foraging needed).
        .event(4000, Event::SetDemands(vec![1200, 800]))
        .event(8000, Event::SetDemands(vec![500, 500]))
        .build()
        .expect("valid scenario");

    let mut engine = config.build();
    let mut detector = SaturationDetector::new(gamma, 0.25, 50);
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>9}",
        "round", "W(0)", "W(1)", "regret", "event"
    );

    let mut obs = FnObserver::new(|r: &antalloc_sim::RoundRecord<'_>| {
        detector.record(r.round, r.loads, r.demands);
        let event = match r.round {
            4000 => "demands flip!",
            8000 => "demands shrink!",
            _ => "",
        };
        if r.round.is_multiple_of(500) || !event.is_empty() {
            println!(
                "{:>6} {:>8} {:>8} {:>8} {:>9}",
                r.round,
                r.loads[0],
                r.loads[1],
                r.instant_regret(),
                event
            );
        }
    });
    engine.run(12_000, &mut obs);

    println!(
        "\nstabilized within 25% band at round {:?} (saturated fraction {:.2})",
        detector.stabilized_at(),
        detector.saturated_fraction()
    );
}
