//! One colony, three feedback worlds, four algorithms.
//!
//! Runs every algorithm under exact, sigmoid, and adversarial feedback
//! and prints the average steady-state regret — the paper's story in
//! one table: the trivial single-sample rule collapses under synchrony
//! + noise, the two-sample Algorithm Ant does not.
//!
//! ```text
//! cargo run --release -p colony-examples --example noise_showdown
//! ```

use antalloc_core::{AntParams, ExactGreedyParams, PreciseAdversarialParams};
use antalloc_noise::{GreyZonePolicy, NoiseModel};
use antalloc_sim::{ControllerSpec, RunSummary, SimConfig};

fn run(noise: &NoiseModel, controller: &ControllerSpec) -> f64 {
    let config = SimConfig::builder(4000, vec![500, 800])
        .noise(noise.clone())
        .controller(controller.clone())
        .seed(7)
        .build()
        .expect("valid scenario");
    let mut engine = config.build();
    let mut warmup = RunSummary::new();
    engine.run(6_000, &mut warmup);
    let mut steady = RunSummary::new();
    engine.run(4_000, &mut steady);
    steady.average_regret()
}

fn main() {
    let gamma = 1.0 / 16.0;
    let noises: [(&str, NoiseModel); 3] = [
        ("exact", NoiseModel::Exact),
        ("sigmoid λ=2", NoiseModel::Sigmoid { lambda: 2.0 }),
        (
            "adversarial γ_ad=0.05 (inverted)",
            NoiseModel::Adversarial {
                gamma_ad: 0.05,
                policy: GreyZonePolicy::Inverted,
            },
        ),
    ];
    let algorithms: [(&str, ControllerSpec); 4] = [
        ("Algorithm Ant", ControllerSpec::Ant(AntParams::new(gamma))),
        (
            "Precise Adversarial ε=0.5",
            ControllerSpec::PreciseAdversarial(PreciseAdversarialParams::new(gamma, 0.5)),
        ),
        ("Trivial (App. D)", ControllerSpec::Trivial),
        (
            "ExactGreedy [11]-style",
            ControllerSpec::ExactGreedy(ExactGreedyParams::default()),
        ),
    ];

    println!("average steady-state regret per round (Σd = 1300, 4000 ants)\n");
    print!("{:<28}", "algorithm \\ noise");
    for (name, _) in &noises {
        print!("{name:>34}");
    }
    println!();
    for (alg_name, spec) in &algorithms {
        print!("{alg_name:<28}");
        for (_, noise) in &noises {
            let avg = run(noise, spec);
            print!("{avg:>34.1}");
        }
        println!();
    }
    println!(
        "\nreference: 5γΣd + 3 = {:.0} (Theorem 3.1's steady bound for Ant)",
        5.0 * gamma * 1300.0 + 3.0
    );
}
