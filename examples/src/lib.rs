//! Shared helpers for the runnable examples.
//!
//! The examples live at the package root (`examples/*.rs`) and are run
//! with `cargo run --release -p colony-examples --example <name>`.

#![forbid(unsafe_code)]

/// Formats a deficit vector as a compact signed list, e.g. `[+3 -1 0]`.
pub fn fmt_deficits(deficits: &[i64]) -> String {
    let body: Vec<String> = deficits
        .iter()
        .map(|d| {
            if *d > 0 {
                format!("+{d}")
            } else {
                format!("{d}")
            }
        })
        .collect();
    format!("[{}]", body.join(" "))
}

/// Renders `value` as a horizontal unicode bar of at most `width` cells,
/// scaled so that `max` fills the bar. Used by examples to sketch loads.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let cells = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "█".repeat(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deficit_formatting() {
        assert_eq!(fmt_deficits(&[3, -1, 0]), "[+3 -1 0]");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(2.0, 1.0, 4), "████");
        assert_eq!(bar(0.5, 1.0, 4), "██");
        assert_eq!(bar(-1.0, 1.0, 4), "");
        assert_eq!(bar(1.0, 0.0, 4), "");
    }
}
