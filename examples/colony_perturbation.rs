//! Shock therapy: kill a third of the colony, scramble the rest, and
//! watch Algorithm Ant recover — Theorem 3.1's "arbitrary initial
//! allocation" premise exercised as live perturbations.
//!
//! ```text
//! cargo run --release -p colony-examples --example colony_perturbation
//! ```

use antalloc_core::AntParams;
use antalloc_env::Perturbation;
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, RunSummary, SimConfig};

fn report(engine: &antalloc_sim::SyncEngine, label: &str) {
    let c = engine.colony();
    let loads: Vec<u64> = (0..c.num_tasks()).map(|j| c.load(j)).collect();
    println!(
        "{label:<34} n = {:<5} loads = {loads:?} regret = {}",
        c.num_ants(),
        c.instant_regret()
    );
}

fn settle(engine: &mut antalloc_sim::SyncEngine, rounds: u64) -> f64 {
    let mut summary = RunSummary::new();
    engine.run(rounds, &mut summary);
    summary.average_regret()
}

fn main() {
    let config = SimConfig::builder(9000, vec![900, 1300, 800])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(0xBEE)
        .build()
        .expect("valid scenario");
    let mut engine = config.build();

    settle(&mut engine, 4000);
    report(&engine, "settled");

    println!("\n>>> killing 3000 random ants");
    engine.perturb(&Perturbation::KillRandom { count: 3000 });
    report(&engine, "immediately after the kill");
    let avg = settle(&mut engine, 4000);
    report(
        &engine,
        format!("4000 rounds later (avg r {avg:.0})").as_str(),
    );

    println!("\n>>> spawning 3000 fresh idle ants");
    engine.perturb(&Perturbation::Spawn { count: 3000 });
    let avg = settle(&mut engine, 4000);
    report(
        &engine,
        format!("4000 rounds later (avg r {avg:.0})").as_str(),
    );

    println!("\n>>> scrambling every assignment uniformly at random");
    engine.perturb(&Perturbation::Scramble);
    report(&engine, "immediately after the scramble");
    let avg = settle(&mut engine, 4000);
    report(
        &engine,
        format!("4000 rounds later (avg r {avg:.0})").as_str(),
    );

    println!("\n>>> stampede: every ant onto task 0");
    engine.perturb(&Perturbation::StampedeTo(0));
    report(&engine, "immediately after the stampede");
    let avg = settle(&mut engine, 6000);
    report(
        &engine,
        format!("6000 rounds later (avg r {avg:.0})").as_str(),
    );
}
