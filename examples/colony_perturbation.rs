//! Shock therapy: kill a third of the colony, scramble the rest, and
//! watch Algorithm Ant recover — Theorem 3.1's "arbitrary initial
//! allocation" premise exercised as scripted shocks.
//!
//! ```text
//! cargo run --release -p colony-examples --example colony_perturbation
//! ```
//!
//! The whole shock sequence lives in the config as a [`Timeline`]: the
//! engine fires each event at the start of its round, drawing from
//! reserved per-round RNG streams, so the identical run replays from a
//! scenario file, a checkpoint, or inside a `Batch` — no imperative
//! `engine.perturb(..)` stepping logic in sight.

use antalloc_core::AntParams;
use antalloc_env::{Event, Timeline};
use antalloc_noise::NoiseModel;
use antalloc_sim::{ControllerSpec, FnObserver, RoundRecord, SimConfig};

fn main() {
    // One block per shock: settle 4000 rounds, shock, repeat.
    let block = 4000u64;
    let shocks: [(&str, Event); 4] = [
        ("kill 3000 random ants", Event::Kill { count: 3000 }),
        ("spawn 3000 fresh idle ants", Event::Spawn { count: 3000 }),
        ("scramble every assignment", Event::Scramble),
        ("stampede onto task 0", Event::StampedeTo(0)),
    ];
    let mut timeline = Timeline::new();
    for (i, (_, event)) in shocks.iter().enumerate() {
        timeline = timeline.at((i as u64 + 1) * block + 1, event.clone());
    }

    let config = SimConfig::builder(9000, vec![900, 1300, 800])
        .noise(NoiseModel::Sigmoid { lambda: 2.0 })
        .controller(ControllerSpec::Ant(AntParams::new(1.0 / 16.0)))
        .seed(0xBEE)
        .timeline(timeline)
        .build()
        .expect("valid scenario");

    // The scenario is pure data — print it as the TOML you would check
    // into an experiment directory.
    println!("--- scenario ---------------------------------------------------");
    print!("{}", config.to_toml());
    println!("----------------------------------------------------------------\n");

    let mut engine = config.build();
    let shock_rounds: Vec<u64> = (1..=shocks.len() as u64).map(|i| i * block + 1).collect();
    let mut window = (0u128, 0u64); // regret accumulator per block tail
    let mut obs = FnObserver::new(|r: &RoundRecord<'_>| {
        let block_pos = (r.round - 1) % block;
        if block_pos >= block / 2 {
            window.0 += u128::from(r.instant_regret());
            window.1 += 1;
        }
        if let Some(i) = shock_rounds.iter().position(|&at| at == r.round) {
            let n: u64 = r.idle + r.loads.iter().map(|&w| u64::from(w)).sum::<u64>();
            println!(
                ">>> {:<28} n = {n:<5} regret spikes to {}",
                shocks[i].0,
                r.instant_regret()
            );
        }
        if block_pos == block - 1 {
            println!(
                "    settled: avg regret {:.0} over the block's second half",
                window.0 as f64 / window.1.max(1) as f64
            );
            window = (0, 0);
        }
    });
    engine.run((shocks.len() as u64 + 1) * block, &mut obs);

    let c = engine.colony();
    let loads: Vec<u64> = (0..c.num_tasks()).map(|j| c.load(j)).collect();
    println!(
        "\nfinal state: n = {}, loads = {loads:?} vs demands {:?}, regret = {}",
        c.num_ants(),
        c.demands().as_slice(),
        c.instant_regret()
    );
    println!("every shock absorbed; the timeline is the experiment.");
}
